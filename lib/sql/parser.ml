(** Recursive-descent parser for the SQL subset described in {!Ast}. *)

open Ast

exception Error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Error
         (Printf.sprintf "expected %s but found %s" (Lexer.to_string tok)
            (Lexer.to_string (peek st))))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> raise (Error (Printf.sprintf "expected identifier, found %s" (Lexer.to_string t)))

let parse_column st first =
  match peek st with
  | Lexer.DOT ->
    advance st;
    let attr = expect_ident st in
    { alias = Some first; attr }
  | _ -> { alias = None; attr = first }

let parse_literal st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    L_int i
  | Lexer.STRING s ->
    advance st;
    L_str s
  | t -> raise (Error (Printf.sprintf "expected literal, found %s" (Lexer.to_string t)))

let parse_term st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    T_col (parse_column st s)
  | Lexer.INT _ | Lexer.STRING _ -> T_lit (parse_literal st)
  | t -> raise (Error (Printf.sprintf "expected term, found %s" (Lexer.to_string t)))

let parse_count st =
  (* COUNT already consumed *)
  expect st Lexer.LPAREN;
  match peek st with
  | Lexer.STAR ->
    advance st;
    expect st Lexer.RPAREN;
    A_count_all
  | Lexer.KW "DISTINCT" ->
    advance st;
    let first = expect_ident st in
    let col = parse_column st first in
    expect st Lexer.RPAREN;
    A_count_distinct col
  | t ->
    raise
      (Error (Printf.sprintf "expected * or DISTINCT in COUNT, found %s" (Lexer.to_string t)))

let rec parse_query st =
  expect st (Lexer.KW "SELECT");
  let select = parse_select_list st in
  expect st (Lexer.KW "FROM");
  let from = parse_from_list st in
  let where =
    if peek st = Lexer.KW "WHERE" then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  let group_by =
    if peek st = Lexer.KW "GROUP" then begin
      advance st;
      expect st (Lexer.KW "BY");
      parse_column_list st
    end
    else []
  in
  let having =
    if peek st = Lexer.KW "HAVING" then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  { select; from; where; group_by; having }

and parse_select_list st =
  let item () =
    match peek st with
    | Lexer.STAR ->
      advance st;
      S_star
    | Lexer.KW "COUNT" ->
      advance st;
      S_agg (parse_count st)
    | Lexer.IDENT s ->
      advance st;
      S_col (parse_column st s)
    | t -> raise (Error (Printf.sprintf "unexpected %s in SELECT list" (Lexer.to_string t)))
  in
  let rec rest acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      rest (item () :: acc)
    end
    else List.rev acc
  in
  rest [ item () ]

and parse_from_list st =
  let entry () =
    let table = expect_ident st in
    match peek st with
    | Lexer.IDENT alias ->
      advance st;
      (table, alias)
    | Lexer.KW "AS" ->
      advance st;
      (table, expect_ident st)
    | _ -> (table, table)
  in
  let rec rest acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      rest (entry () :: acc)
    end
    else List.rev acc
  in
  rest [ entry () ]

and parse_column_list st =
  let col () =
    let first = expect_ident st in
    parse_column st first
  in
  let rec rest acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      rest (col () :: acc)
    end
    else List.rev acc
  in
  rest [ col () ]

(* cond := conj (OR conj)* ; conj := unit (AND unit)* *)
and parse_cond st =
  let left = parse_conj st in
  if peek st = Lexer.KW "OR" then begin
    advance st;
    C_or (left, parse_cond st)
  end
  else left

and parse_conj st =
  let left = parse_unit st in
  if peek st = Lexer.KW "AND" then begin
    advance st;
    C_and (left, parse_conj st)
  end
  else left

and parse_unit st =
  match peek st with
  | Lexer.KW "NOT" -> (
    advance st;
    match peek st with
    | Lexer.KW "EXISTS" ->
      advance st;
      expect st Lexer.LPAREN;
      let q = parse_query st in
      expect st Lexer.RPAREN;
      C_not_exists q
    | _ -> C_not (parse_unit st))
  | Lexer.KW "EXISTS" ->
    advance st;
    expect st Lexer.LPAREN;
    let q = parse_query st in
    expect st Lexer.RPAREN;
    C_exists q
  | Lexer.LPAREN ->
    advance st;
    let c = parse_cond st in
    expect st Lexer.RPAREN;
    c
  | Lexer.KW "COUNT" ->
    advance st;
    let agg = parse_count st in
    let op =
      match peek st with
      | Lexer.EQ -> Eq
      | Lexer.NEQ -> Neq
      | Lexer.LT -> Lt
      | Lexer.GT -> Gt
      | t -> raise (Error (Printf.sprintf "expected comparison after COUNT, found %s" (Lexer.to_string t)))
    in
    advance st;
    let n =
      match peek st with
      | Lexer.INT i ->
        advance st;
        i
      | t -> raise (Error (Printf.sprintf "expected integer, found %s" (Lexer.to_string t)))
    in
    C_agg_cmp (op, agg, n)
  | _ -> (
    let lhs = parse_term st in
    match peek st with
    | Lexer.EQ ->
      advance st;
      C_cmp (Eq, lhs, parse_term st)
    | Lexer.NEQ ->
      advance st;
      C_cmp (Neq, lhs, parse_term st)
    | Lexer.LT ->
      advance st;
      C_cmp (Lt, lhs, parse_term st)
    | Lexer.GT ->
      advance st;
      C_cmp (Gt, lhs, parse_term st)
    | Lexer.KW "IN" ->
      advance st;
      expect st Lexer.LPAREN;
      let rec lits acc =
        let l = parse_literal st in
        if peek st = Lexer.COMMA then begin
          advance st;
          lits (l :: acc)
        end
        else List.rev (l :: acc)
      in
      let ls = lits [] in
      expect st Lexer.RPAREN;
      C_in (lhs, ls)
    | Lexer.KW "NOT" ->
      advance st;
      expect st (Lexer.KW "IN");
      expect st Lexer.LPAREN;
      let rec lits acc =
        let l = parse_literal st in
        if peek st = Lexer.COMMA then begin
          advance st;
          lits (l :: acc)
        end
        else List.rev (l :: acc)
      in
      let ls = lits [] in
      expect st Lexer.RPAREN;
      C_not (C_in (lhs, ls))
    | t -> raise (Error (Printf.sprintf "expected comparison, found %s" (Lexer.to_string t))))

(** Parse a complete SELECT statement. *)
let query_of_string s =
  let st = { toks = Lexer.tokenize s } in
  let q = parse_query st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> raise (Error (Printf.sprintf "trailing input: %s" (Lexer.to_string t))));
  q
