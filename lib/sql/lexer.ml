(** Hand-rolled SQL tokenizer. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | STAR
  | EQ
  | NEQ
  | LT
  | GT
  | KW of string  (** upper-cased keyword *)
  | EOF

exception Error of string

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "EXISTS"; "IN"; "GROUP";
    "BY"; "HAVING"; "AS"; "DISTINCT"; "COUNT"; "UNION";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then emit EOF
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | ',' ->
        emit COMMA;
        go (i + 1)
      | '.' ->
        emit DOT;
        go (i + 1)
      | '(' ->
        emit LPAREN;
        go (i + 1)
      | ')' ->
        emit RPAREN;
        go (i + 1)
      | '*' ->
        emit STAR;
        go (i + 1)
      | '=' ->
        emit EQ;
        go (i + 1)
      | '<' when i + 1 < n && s.[i + 1] = '>' ->
        emit NEQ;
        go (i + 2)
      | '!' when i + 1 < n && s.[i + 1] = '=' ->
        emit NEQ;
        go (i + 2)
      | '<' ->
        emit LT;
        go (i + 1)
      | '>' ->
        emit GT;
        go (i + 1)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Error "unterminated string literal")
          else if s.[j] = '\'' && j + 1 < n && s.[j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            str (j + 2)
          end
          else if s.[j] = '\'' then j + 1
          else begin
            Buffer.add_char buf s.[j];
            str (j + 1)
          end
        in
        let i' = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go i'
      | '"' ->
        (* double-quoted identifiers *)
        let rec str j =
          if j >= n then raise (Error "unterminated quoted identifier")
          else if s.[j] = '"' then j
          else str (j + 1)
        in
        let j = str (i + 1) in
        emit (IDENT (String.sub s (i + 1) (j - i - 1)));
        go (j + 1)
      | c when c >= '0' && c <= '9' ->
        let rec num j = if j < n && s.[j] >= '0' && s.[j] <= '9' then num (j + 1) else j in
        let j = num i in
        emit (INT (int_of_string (String.sub s i (j - i))));
        go j
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char s.[j] then ident (j + 1) else j in
        let j = ident i in
        let word = String.sub s i (j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (KW upper) else emit (IDENT word);
        go j
      | c -> raise (Error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  go 0;
  List.rev !tokens

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT i -> Printf.sprintf "integer %d" i
  | STRING s -> Printf.sprintf "string '%s'" s
  | COMMA -> ","
  | DOT -> "."
  | LPAREN -> "("
  | RPAREN -> ")"
  | STAR -> "*"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | GT -> ">"
  | KW k -> k
  | EOF -> "end of input"
