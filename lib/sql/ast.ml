(** Surface syntax tree for the supported SQL subset:

    {v
    SELECT <cols | * | aggregates> FROM t1 [a1], t2 [a2], ...
    [WHERE cond]  [GROUP BY cols]  [HAVING cond]
    v}

    with conditions built from [=], [<>], [<], [>], [IN (...)],
    [AND]/[OR]/[NOT] and (correlated) [EXISTS]/[NOT EXISTS]
    subqueries — enough to express every violation query in the paper
    (§1's curriculum query, the Constraints-table joins of Fig. 5(a),
    and the group-by FD check of Fig. 5(b)). *)

type literal = L_int of int | L_str of string

type column = { alias : string option; attr : string }

type term = T_col of column | T_lit of literal

type cmp = Eq | Neq | Lt | Gt

type agg = A_count_all | A_count_distinct of column

type cond =
  | C_cmp of cmp * term * term
  | C_in of term * literal list
  | C_exists of query
  | C_not_exists of query
  | C_agg_cmp of cmp * agg * int  (** HAVING count(...) OP n *)
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond

and select_item = S_star | S_col of column | S_agg of agg

and query = {
  select : select_item list;
  from : (string * string) list;  (** (table name, alias) *)
  where : cond option;
  group_by : column list;
  having : cond option;
}

let lit_to_value = function
  | L_int i -> Fcv_relation.Value.Int i
  | L_str s -> Fcv_relation.Value.Str s

let pp_column fmt c =
  match c.alias with
  | Some a -> Format.fprintf fmt "%s.%s" a c.attr
  | None -> Format.pp_print_string fmt c.attr
