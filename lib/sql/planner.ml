(** Translates the surface AST into a physical {!Algebra.plan}:

    - FROM entries become scans; equality conjuncts between different
      scans drive a greedy hash-join tree; leftover cross products are
      explicit;
    - remaining local conjuncts become a selection;
    - (NOT) EXISTS subqueries become semi/anti joins, with the
      subquery's outer-referencing equality conjuncts extracted as the
      join keys (the classic unnesting of the paper's violation
      queries);
    - GROUP BY / HAVING become hash aggregation.

    Literals are resolved against the shared domain dictionaries; a
    literal absent from a domain can never match, so [=] against it
    folds to [false]. *)

module R = Fcv_relation
open Ast

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type binding = {
  alias : string;
  table : R.Table.t;
  offset : int;  (** first column of this table in the flat row *)
}

type env = binding list

(* Resolve a column to (flat position, dictionary). *)
let resolve_local (env : env) (c : column) =
  let candidates =
    List.filter_map
      (fun b ->
        match c.alias with
        | Some a when a <> b.alias -> None
        | _ -> (
          match R.Schema.position_opt (R.Table.schema b.table) c.attr with
          | Some i -> Some (b.offset + i, R.Table.dict b.table i)
          | None -> None))
      env
  in
  match candidates with
  | [ x ] -> Some x
  | [] -> None
  | _ -> fail "ambiguous column %s" (Format.asprintf "%a" pp_column c)

(* Resolution that also consults the outer scope of a subquery. *)
type resolved = Local of int * R.Dict.t | Outer of int * R.Dict.t

let resolve ~env ~outer (c : column) =
  match resolve_local env c with
  | Some (pos, dict) -> Local (pos, dict)
  | None -> (
    match resolve_local outer c with
    | Some (pos, dict) -> Outer (pos, dict)
    | None -> fail "unknown column %s" (Format.asprintf "%a" pp_column c))

let rec conjuncts = function
  | C_and (a, b) -> conjuncts a @ conjuncts b
  | c -> [ c ]

let lit_code dict lit = R.Dict.code dict (lit_to_value lit)

(* A conjunct classified relative to the current scope. *)
type classified =
  | Filter of Algebra.pred
  | Join_edge of int * int  (** two local columns, equality *)
  | Correlation of int * int  (** (outer position, local position), equality *)
  | Subquery of bool * query  (** [true] = EXISTS, [false] = NOT EXISTS *)

let rec classify ~env ~outer cond =
  let resolve_col c = resolve ~env ~outer c in
  let pred_of_cmp op (a : int) (b : term) dict =
    match (op, b) with
    | Eq, T_lit l -> (
      match lit_code dict l with
      | Some code -> Algebra.Eq_const (a, code)
      | None -> Algebra.False)
    | Neq, T_lit l -> (
      match lit_code dict l with
      | Some code -> Algebra.Not (Eq_const (a, code))
      | None -> Algebra.True)
    | (Lt | Gt), T_lit (L_int _) ->
      fail "ordered comparison on dictionary-coded values is not supported"
    | _ -> fail "unsupported comparison shape"
  in
  match cond with
  | C_cmp (op, T_col c1, T_col c2) -> (
    match (resolve_col c1, resolve_col c2) with
    | Local (p1, d1), Local (p2, d2) ->
      if R.Dict.name d1 <> R.Dict.name d2 then
        fail "comparison across distinct domains %s / %s" (R.Dict.name d1) (R.Dict.name d2);
      if op = Eq then Join_edge (p1, p2)
      else if op = Neq then Filter (Algebra.Not (Eq_col (p1, p2)))
      else fail "ordered column comparison unsupported"
    | Outer (po, d1), Local (pl, d2) | Local (pl, d2), Outer (po, d1) ->
      if R.Dict.name d1 <> R.Dict.name d2 then
        fail "correlation across distinct domains";
      if op = Eq then Correlation (po, pl)
      else fail "only equality correlation is supported"
    | Outer _, Outer _ -> fail "condition references only outer columns")
  | C_cmp (op, T_col c, T_lit l) | C_cmp (op, T_lit l, T_col c) -> (
    match resolve_col c with
    | Local (p, dict) -> Filter (pred_of_cmp op p (T_lit l) dict)
    | Outer _ -> fail "literal predicate on outer column inside subquery")
  | C_cmp (_, T_lit _, T_lit _) -> fail "literal-only comparison"
  | C_in (T_col c, lits) -> (
    match resolve_col c with
    | Local (p, dict) ->
      let codes = List.filter_map (lit_code dict) lits in
      Filter (if codes = [] then Algebra.False else Algebra.In_set (p, codes))
    | Outer _ -> fail "IN on outer column inside subquery")
  | C_in (T_lit _, _) -> fail "IN on literal"
  | C_exists q -> Subquery (true, q)
  | C_not_exists q -> Subquery (false, q)
  | C_agg_cmp _ -> fail "aggregate comparison outside HAVING"
  | C_not inner -> (
    (* NOT over a purely local condition only. *)
    match classify ~env ~outer inner with
    | Filter p -> Filter (Algebra.Not p)
    | Join_edge (a, b) -> Filter (Algebra.Not (Eq_col (a, b)))
    | _ -> fail "NOT over subquery/correlation")
  | C_or (a, b) -> (
    match (classify ~env ~outer a, classify ~env ~outer b) with
    | Filter pa, Filter pb -> Filter (Algebra.Or (pa, pb))
    | Filter pa, Join_edge (x, y) -> Filter (Algebra.Or (pa, Eq_col (x, y)))
    | Join_edge (x, y), Filter pb -> Filter (Algebra.Or (Eq_col (x, y), pb))
    | Join_edge (x, y), Join_edge (u, v) ->
      Filter (Algebra.Or (Eq_col (x, y), Eq_col (u, v)))
    | _ -> fail "OR over subqueries is not supported")
  | C_and _ -> assert false (* flattened by [conjuncts] *)

(* Greedy cost-based join-tree construction: components carry a plan,
   their flat column positions and a cardinality estimate; at each
   step the equality edge whose join has the smallest estimated result
   is merged first (the classic greedy heuristic over
   |L|·|R| / max(distinct keys)). *)
type component = {
  plan : Algebra.plan;
  cols : (int * int) list;  (** original flat position -> position in plan output *)
  card : float;  (** estimated cardinality *)
  dom_of : int -> float;  (** flat position -> active-domain estimate *)
}

let estimate_join ca cb edges_between =
  (* independence assumption: each equality key divides the cross
     product by the larger active domain of its endpoints *)
  List.fold_left
    (fun acc (x, y) -> acc /. max 1. (max (ca.dom_of x) (cb.dom_of y)))
    (ca.card *. cb.card)
    edges_between

let build_join_tree scans edges =
  let components = ref (List.map (fun c -> ref c) scans) in
  let find_component pos =
    List.find (fun c -> List.mem_assoc pos !c.cols) !components
  in
  let pending = ref edges in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    (* split the pending edges into same-component filters and
       cross-component candidates *)
    let filters, candidates =
      List.partition (fun (a, b) -> find_component a == find_component b) !pending
    in
    List.iter
      (fun (a, b) ->
        let ca = find_component a in
        let pa = List.assoc a !ca.cols and pb = List.assoc b !ca.cols in
        ca := { !ca with plan = Algebra.Select (Eq_col (pa, pb), !ca.plan) };
        progress := true)
      filters;
    match candidates with
    | [] -> pending := []
    | _ ->
      (* pick the cheapest join among candidate component pairs *)
      let cost (a, b) =
        let ca = find_component a and cb = find_component b in
        let between =
          List.filter
            (fun (x, y) ->
              let cx = find_component x and cy = find_component y in
              (cx == ca && cy == cb) || (cx == cb && cy == ca))
            candidates
        in
        estimate_join !ca !cb
          (List.map
             (fun (x, y) -> if List.mem_assoc x !ca.cols then (x, y) else (y, x))
             between)
      in
      let best =
        List.fold_left
          (fun acc e -> match acc with
            | Some (_, c) when c <= cost e -> acc
            | _ -> Some (e, cost e))
          None candidates
      in
      (match best with
      | None -> pending := []
      | Some ((a, b), _) ->
        let ca = find_component a and cb = find_component b in
        let between, others =
          List.partition
            (fun (x, y) ->
              let cx = find_component x and cy = find_component y in
              (cx == ca && cy == cb) || (cx == cb && cy == ca))
            candidates
        in
        let keys =
          List.map
            (fun (x, y) ->
              if List.mem_assoc x !ca.cols then
                (List.assoc x !ca.cols, List.assoc y !cb.cols)
              else (List.assoc y !ca.cols, List.assoc x !cb.cols))
            between
        in
        let left_arity = Algebra.arity !ca.plan in
        let ca_v = !ca and cb_v = !cb in
        let merged =
          {
            plan = Algebra.Hash_join (keys, ca_v.plan, cb_v.plan);
            cols = ca_v.cols @ List.map (fun (orig, p) -> (orig, p + left_arity)) cb_v.cols;
            card =
              estimate_join ca_v cb_v
                (List.map
                   (fun (x, y) -> if List.mem_assoc x ca_v.cols then (x, y) else (y, x))
                   between);
            dom_of =
              (fun pos ->
                if List.mem_assoc pos ca_v.cols then ca_v.dom_of pos else cb_v.dom_of pos);
          }
        in
        components := List.filter (fun c -> c != ca && c != cb) !components;
        components := ref merged :: !components;
        progress := true;
        pending := others)
  done;
  (* cross-product the remaining components *)
  match !components with
  | [] -> fail "empty FROM"
  | first :: rest ->
    List.fold_left
      (fun acc c ->
        let left_arity = Algebra.arity acc.plan in
        {
          acc with
          plan = Algebra.Product (acc.plan, !c.plan);
          cols = acc.cols @ List.map (fun (orig, p) -> (orig, p + left_arity)) !c.cols;
        })
      !first rest

(* Rewrite a predicate's column references through a position map. *)
let rec remap_pred map = function
  | Algebra.True -> Algebra.True
  | Algebra.False -> Algebra.False
  | Algebra.Eq_col (a, b) -> Algebra.Eq_col (List.assoc a map, List.assoc b map)
  | Algebra.Eq_const (a, c) -> Algebra.Eq_const (List.assoc a map, c)
  | Algebra.In_set (a, cs) -> Algebra.In_set (List.assoc a map, cs)
  | Algebra.Gt_const (a, c) -> Algebra.Gt_const (List.assoc a map, c)
  | Algebra.Lt_const (a, c) -> Algebra.Lt_const (List.assoc a map, c)
  | Algebra.Not p -> Algebra.Not (remap_pred map p)
  | Algebra.And (p, q) -> Algebra.And (remap_pred map p, remap_pred map q)
  | Algebra.Or (p, q) -> Algebra.Or (remap_pred map p, remap_pred map q)

let rec plan_scope db ~outer (q : query) =
  (* environment over the flat (pre-join) numbering *)
  let env, _ =
    List.fold_left
      (fun (env, off) (tname, alias) ->
        let table = R.Database.table db tname in
        (env @ [ { alias; table; offset = off } ], off + R.Table.arity table))
      ([], 0) q.from
  in
  let classified =
    match q.where with
    | None -> []
    | Some w -> List.map (classify ~env ~outer) (conjuncts w)
  in
  let filters = List.filter_map (function Filter p -> Some p | _ -> None) classified in
  let edges = List.filter_map (function Join_edge (a, b) -> Some (a, b) | _ -> None) classified in
  let correlations =
    List.filter_map (function Correlation (o, l) -> Some (o, l) | _ -> None) classified
  in
  let subqueries =
    List.filter_map (function Subquery (pos, sq) -> Some (pos, sq) | _ -> None) classified
  in
  (* push single-table filters below the join tree, with a selectivity
     estimate feeding the cost-based join ordering *)
  let rec pred_columns = function
    | Algebra.True | Algebra.False -> []
    | Algebra.Eq_col (a, b) -> [ a; b ]
    | Algebra.Eq_const (a, _) | Algebra.In_set (a, _) | Algebra.Gt_const (a, _)
    | Algebra.Lt_const (a, _) ->
      [ a ]
    | Algebra.Not p -> pred_columns p
    | Algebra.And (p, q) | Algebra.Or (p, q) -> pred_columns p @ pred_columns q
  in
  let owner_of pos =
    List.find_opt
      (fun b -> pos >= b.offset && pos < b.offset + R.Table.arity b.table)
      env
  in
  let pushed, kept =
    List.partition
      (fun p ->
        match pred_columns p with
        | [] -> false
        | c :: rest -> (
          match owner_of c with
          | Some b ->
            List.for_all
              (fun c' ->
                match owner_of c' with
                | Some b' -> b'.alias = b.alias && b'.offset = b.offset
                | None -> false)
              rest
          | None -> false))
      filters
  in
  let rec selectivity b = function
    | Algebra.Eq_const (a, _) ->
      1. /. float_of_int (max 1 (R.Table.dom_size b.table (a - b.offset)))
    | Algebra.In_set (a, cs) ->
      float_of_int (List.length cs)
      /. float_of_int (max 1 (R.Table.dom_size b.table (a - b.offset)))
    | Algebra.Not p -> max 0.05 (1. -. selectivity b p)
    | Algebra.And (p, q) -> selectivity b p *. selectivity b q
    | Algebra.Or (p, q) -> min 1. (selectivity b p +. selectivity b q)
    | Algebra.True -> 1.
    | Algebra.False -> 0.
    | Algebra.Eq_col _ | Algebra.Gt_const _ | Algebra.Lt_const _ -> 0.33
  in
  let scans =
    List.map
      (fun b ->
        let mine =
          List.filter
            (fun p ->
              match pred_columns p with
              | c :: _ -> (
                match owner_of c with
                | Some b' -> b'.alias = b.alias && b'.offset = b.offset
                | None -> false)
              | [] -> false)
            pushed
        in
        let local_map =
          List.init (R.Table.arity b.table) (fun i -> (b.offset + i, i))
        in
        let plan =
          List.fold_left
            (fun acc p -> Algebra.Select (remap_pred local_map p, acc))
            (Algebra.Scan b.table) mine
        in
        let card =
          List.fold_left
            (fun acc p -> acc *. selectivity b p)
            (float_of_int (R.Table.cardinality b.table))
            mine
        in
        {
          plan;
          cols = local_map;
          card;
          dom_of =
            (fun pos -> float_of_int (max 1 (R.Table.dom_size b.table (pos - b.offset))));
        })
      env
  in
  let comp = build_join_tree scans edges in
  let map = comp.cols in
  let plan =
    List.fold_left
      (fun acc p -> Algebra.Select (remap_pred map p, acc))
      comp.plan kept
  in
  (* attach subqueries as semi/anti joins *)
  let plan =
    List.fold_left
      (fun acc (positive, sq) ->
        let sub_plan, sub_corr = plan_subquery db ~outer_env:env sq in
        let keys =
          List.map (fun (outer_pos, sub_pos) -> (List.assoc outer_pos map, sub_pos)) sub_corr
        in
        if positive then Algebra.Semi_join (keys, acc, sub_plan)
        else Algebra.Anti_join (keys, acc, sub_plan))
      plan subqueries
  in
  (env, map, plan, correlations)

(* A subquery's result plan plus its correlation keys, with local
   positions expressed in the subquery plan's output numbering. *)
and plan_subquery db ~outer_env sq =
  let env, map, plan, correlations = plan_scope db ~outer:outer_env sq in
  ignore env;
  if sq.group_by <> [] || sq.having <> None then
    fail "GROUP BY inside a subquery is not supported";
  let keys = List.map (fun (o, l) -> (o, List.assoc l map)) correlations in
  (plan, keys)

let agg_of_ast ~env ~map = function
  | A_count_all -> Algebra.Count_all
  | A_count_distinct c -> (
    match resolve_local env c with
    | Some (pos, _) -> Algebra.Count_distinct (List.assoc pos map)
    | None -> fail "unknown column in COUNT(DISTINCT)")

(** Plan a full query.  Returns the plan and the output column names. *)
let plan db (q : query) =
  let env, map, plan, correlations = plan_scope db ~outer:[] q in
  if correlations <> [] then fail "top-level query cannot be correlated";
  let col_name b i =
    Printf.sprintf "%s.%s" b.alias (R.Schema.attr_names (R.Table.schema b.table) |> fun l -> List.nth l i)
  in
  if q.group_by = [] && q.having = None then begin
    (* plain SELECT *)
    let has_agg = List.exists (function S_agg _ -> true | _ -> false) q.select in
    if has_agg then begin
      (* global aggregation: GROUP BY with no keys *)
      let aggs =
        List.filter_map (function S_agg a -> Some (agg_of_ast ~env ~map a) | _ -> None) q.select
      in
      ( Algebra.Group_by ([||], Array.of_list aggs, Algebra.True, plan),
        List.map (fun _ -> "agg") aggs )
    end
    else
      match q.select with
      | [ S_star ] ->
        let names =
          List.concat_map
            (fun b -> List.init (R.Table.arity b.table) (fun i -> col_name b i))
            env
        in
        (* order output columns by original flat position *)
        let order = List.sort compare (List.map fst map) in
        let cols = Array.of_list (List.map (fun o -> List.assoc o map) order) in
        (Algebra.Project (cols, plan), names)
      | items ->
        let positions_names =
          List.map
            (function
              | S_col c -> (
                match resolve_local env c with
                | Some (pos, _) ->
                  (List.assoc pos map, Format.asprintf "%a" pp_column c)
                | None -> fail "unknown column %s" (Format.asprintf "%a" pp_column c))
              | S_star -> fail "mixing * with explicit columns"
              | S_agg _ -> assert false)
            items
        in
        ( Algebra.Project (Array.of_list (List.map fst positions_names), plan),
          List.map snd positions_names )
  end
  else begin
    (* GROUP BY path *)
    let key_positions =
      List.map
        (fun c ->
          match resolve_local env c with
          | Some (pos, _) -> List.assoc pos map
          | None -> fail "unknown column in GROUP BY")
        q.group_by
    in
    (* aggregates come from the SELECT list and the HAVING clause *)
    let select_aggs =
      List.filter_map (function S_agg a -> Some a | _ -> None) q.select
    in
    let having_aggs =
      match q.having with
      | None -> []
      | Some h ->
        List.filter_map (function C_agg_cmp (_, a, _) -> Some a | _ -> None) (conjuncts h)
    in
    let all_aggs = select_aggs @ having_aggs in
    let aggs = Array.of_list (List.map (agg_of_ast ~env ~map) all_aggs) in
    let nkeys = List.length key_positions in
    let agg_index a =
      let rec find i = function
        | [] -> fail "HAVING references an aggregate not computed"
        | x :: rest -> if x = a then i else find (i + 1) rest
      in
      nkeys + find 0 all_aggs
    in
    let having_pred =
      match q.having with
      | None -> Algebra.True
      | Some h ->
        List.fold_left
          (fun acc c ->
            let p =
              match c with
              | C_agg_cmp (Gt, a, n) -> Algebra.Gt_const (agg_index a, n)
              | C_agg_cmp (Lt, a, n) -> Algebra.Lt_const (agg_index a, n)
              | C_agg_cmp (Eq, a, n) -> Algebra.Eq_const (agg_index a, n)
              | C_agg_cmp (Neq, a, n) -> Algebra.Not (Eq_const (agg_index a, n))
              | _ -> fail "HAVING supports aggregate comparisons only"
            in
            Algebra.And (acc, p))
          Algebra.True (conjuncts h)
    in
    let grouped = Algebra.Group_by (Array.of_list key_positions, aggs, having_pred, plan) in
    (* project the SELECT list out of keys ++ aggs *)
    let out =
      List.map
        (function
          | S_col c ->
            let rec key_pos i = function
              | [] -> fail "SELECT column not in GROUP BY"
              | gc :: rest -> if gc = c then i else key_pos (i + 1) rest
            in
            (key_pos 0 q.group_by, Format.asprintf "%a" pp_column c)
          | S_agg a ->
            let rec find i = function
              | [] -> assert false
              | x :: rest -> if x = a then i else find (i + 1) rest
            in
            (nkeys + find 0 all_aggs, "agg")
          | S_star -> fail "SELECT * with GROUP BY")
        q.select
    in
    ( Algebra.Project (Array.of_list (List.map fst out), grouped),
      List.map snd out )
  end

(** Parse, plan and run a SQL string against [db]; returns decoded rows
    is left to callers — this returns coded rows plus column names. *)
let run db sql =
  let q = Parser.query_of_string sql in
  let plan, names = plan db q in
  (Exec.run plan, names)

(** Cardinality of a SQL query's result — the checker's SQL fallback
    only needs emptiness of the violation query. *)
let count db sql =
  let q = Parser.query_of_string sql in
  let plan, _ = plan db q in
  Exec.count plan
