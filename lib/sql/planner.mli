(** SQL AST → physical plan: greedy hash-join trees from equality
    conjuncts, selections pushed, correlated (NOT) EXISTS unnested to
    semi/anti joins, GROUP BY / HAVING to hash aggregation.  Literals
    resolve through the shared domain dictionaries (an absent literal
    folds [=] to false). *)

exception Unsupported of string

val plan : Fcv_relation.Database.t -> Ast.query -> Algebra.plan * string list
(** The plan and its output column names.  @raise Unsupported *)

val run : Fcv_relation.Database.t -> string -> int array list * string list
(** Parse, plan and execute a SQL string. *)

val count : Fcv_relation.Database.t -> string -> int
