(** Plan evaluator.  Joins are hash joins (build on the right input),
    semi/anti joins build a key set on the right, grouping is hash
    aggregation — the standard in-memory execution strategies a
    relational engine would pick for the paper's violation queries. *)

module Table = Fcv_relation.Table
module T = Fcv_util.Telemetry
open Algebra

let rec eval_pred pred (row : int array) =
  match pred with
  | True -> true
  | False -> false
  | Eq_col (a, b) -> row.(a) = row.(b)
  | Eq_const (a, c) -> row.(a) = c
  | In_set (a, cs) -> List.mem row.(a) cs
  | Gt_const (a, c) -> row.(a) > c
  | Lt_const (a, c) -> row.(a) < c
  | Not p -> not (eval_pred p row)
  | And (p, q) -> eval_pred p row && eval_pred q row
  | Or (p, q) -> eval_pred p row || eval_pred q row

let key_of_row cols (row : int array) = List.map (fun c -> row.(c)) cols

(* Aggregate accumulators. *)
type acc = {
  mutable count : int;
  distinct : (int, unit) Hashtbl.t option;
  mutable minv : int;
  mutable maxv : int;
}

let run plan =
  let rec go plan : int array list =
    match plan with
    | Scan t ->
      let rows = Table.fold t ~init:[] ~f:(fun acc row -> Array.copy row :: acc) in
      if T.enabled () then
        T.incr ~by:(List.length rows) (T.counter "sql.rows_scanned");
      rows
    | Select (p, q) -> List.filter (eval_pred p) (go q)
    | Project (cols, q) ->
      List.map (fun row -> Array.map (fun c -> row.(c)) cols) (go q)
    | Hash_join (keys, l, r) ->
      let lk = List.map fst keys and rk = List.map snd keys in
      let index = Hashtbl.create 1024 in
      List.iter
        (fun row ->
          let k = key_of_row rk row in
          Hashtbl.add index k row)
        (go r);
      let lrows = go l in
      if T.enabled () then begin
        T.incr ~by:(Hashtbl.length index) (T.counter "sql.hash_join.build_rows");
        T.incr ~by:(List.length lrows) (T.counter "sql.hash_join.probe_rows")
      end;
      List.concat_map
        (fun lrow ->
          let k = key_of_row lk lrow in
          List.map (fun rrow -> Array.append lrow rrow) (Hashtbl.find_all index k))
        lrows
    | Semi_join (keys, l, r) ->
      let lk = List.map fst keys and rk = List.map snd keys in
      let index = Hashtbl.create 1024 in
      List.iter (fun row -> Hashtbl.replace index (key_of_row rk row) ()) (go r);
      List.filter (fun lrow -> Hashtbl.mem index (key_of_row lk lrow)) (go l)
    | Anti_join (keys, l, r) ->
      let lk = List.map fst keys and rk = List.map snd keys in
      let index = Hashtbl.create 1024 in
      List.iter (fun row -> Hashtbl.replace index (key_of_row rk row) ()) (go r);
      List.filter (fun lrow -> not (Hashtbl.mem index (key_of_row lk lrow))) (go l)
    | Product (l, r) ->
      let rrows = go r in
      List.concat_map (fun lrow -> List.map (Array.append lrow) rrows) (go l)
    | Union (l, r) ->
      let seen = Hashtbl.create 1024 in
      let keep row =
        if Hashtbl.mem seen row then false
        else begin
          Hashtbl.add seen row ();
          true
        end
      in
      List.filter keep (go l @ go r)
    | Diff (l, r) ->
      let right = Hashtbl.create 1024 in
      List.iter (fun row -> Hashtbl.replace right row ()) (go r);
      let seen = Hashtbl.create 1024 in
      List.filter
        (fun row ->
          if Hashtbl.mem right row || Hashtbl.mem seen row then false
          else begin
            Hashtbl.add seen row ();
            true
          end)
        (go l)
    | Distinct q ->
      let seen = Hashtbl.create 1024 in
      List.filter
        (fun row ->
          if Hashtbl.mem seen row then false
          else begin
            Hashtbl.add seen row ();
            true
          end)
        (go q)
    | Group_by (keys, aggs, having, q) ->
      let groups : (int list, acc array) Hashtbl.t = Hashtbl.create 1024 in
      let fresh () =
        Array.map
          (fun a ->
            {
              count = 0;
              distinct =
                (match a with Count_distinct _ -> Some (Hashtbl.create 16) | _ -> None);
              minv = max_int;
              maxv = min_int;
            })
          aggs
      in
      List.iter
        (fun row ->
          let k = key_of_row (Array.to_list keys) row in
          let accs =
            match Hashtbl.find_opt groups k with
            | Some a -> a
            | None ->
              let a = fresh () in
              Hashtbl.add groups k a;
              a
          in
          Array.iteri
            (fun i agg ->
              let acc = accs.(i) in
              match agg with
              | Count_all -> acc.count <- acc.count + 1
              | Count_distinct c -> (
                match acc.distinct with
                | Some h -> Hashtbl.replace h row.(c) ()
                | None -> assert false)
              | Min_col c -> acc.minv <- min acc.minv row.(c)
              | Max_col c -> acc.maxv <- max acc.maxv row.(c))
            aggs)
        (go q);
      Hashtbl.fold
        (fun k accs out ->
          let agg_values =
            Array.mapi
              (fun i agg ->
                match agg with
                | Count_all -> accs.(i).count
                | Count_distinct _ -> (
                  match accs.(i).distinct with
                  | Some h -> Hashtbl.length h
                  | None -> assert false)
                | Min_col _ -> accs.(i).minv
                | Max_col _ -> accs.(i).maxv)
              aggs
          in
          let row = Array.append (Array.of_list k) agg_values in
          if eval_pred having row then row :: out else out)
        groups []
  in
  go plan

(** Run a plan and report only the result cardinality (what the
    constraint checker needs: is the violation set empty?). *)
let count plan = List.length (run plan)

let is_empty plan = run plan = []
