(** Physical relational algebra.  Plans operate on dictionary-coded
    rows; columns are positions into the current intermediate row.
    This is the execution model of the SQL baseline that the paper's
    BDD approach is compared against. *)

module Table = Fcv_relation.Table

type pred =
  | True
  | False
  | Eq_col of int * int  (** both columns draw from the same domain *)
  | Eq_const of int * int  (** column = domain code *)
  | In_set of int * int list
  | Gt_const of int * int
      (** column > integer; compares raw integers, intended for
          aggregate outputs (e.g. HAVING count(...) > 1) *)
  | Lt_const of int * int
  | Not of pred
  | And of pred * pred
  | Or of pred * pred

type agg =
  | Count_all
  | Count_distinct of int
  | Min_col of int
  | Max_col of int

type plan =
  | Scan of Table.t
  | Select of pred * plan
  | Project of int array * plan
  | Hash_join of (int * int) list * plan * plan
      (** equi-join on [(left_col, right_col)] pairs; output is the
          left row followed by the right row *)
  | Semi_join of (int * int) list * plan * plan
      (** left rows with at least one match on the right (EXISTS) *)
  | Anti_join of (int * int) list * plan * plan
      (** left rows with no match on the right (NOT EXISTS) *)
  | Product of plan * plan
  | Union of plan * plan  (** set union; same arity *)
  | Diff of plan * plan  (** set difference; same arity *)
  | Distinct of plan
  | Group_by of int array * agg array * pred * plan
      (** grouping keys, aggregates, HAVING predicate evaluated over
          [keys ++ agg values]; output rows are [keys ++ agg values] *)

(** Number of columns a plan produces. *)
let rec arity = function
  | Scan t -> Table.arity t
  | Select (_, p) -> arity p
  | Project (cols, _) -> Array.length cols
  | Hash_join (_, l, r) | Product (l, r) -> arity l + arity r
  | Semi_join (_, l, _) | Anti_join (_, l, _) -> arity l
  | Union (l, _) | Diff (l, _) -> arity l
  | Distinct p -> arity p
  | Group_by (keys, aggs, _, _) -> Array.length keys + Array.length aggs

let rec pp_pred fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Eq_col (a, b) -> Format.fprintf fmt "#%d = #%d" a b
  | Eq_const (a, c) -> Format.fprintf fmt "#%d = %d" a c
  | In_set (a, cs) ->
    Format.fprintf fmt "#%d in {%s}" a (String.concat "," (List.map string_of_int cs))
  | Gt_const (a, c) -> Format.fprintf fmt "#%d > %d" a c
  | Lt_const (a, c) -> Format.fprintf fmt "#%d < %d" a c
  | Not p -> Format.fprintf fmt "not (%a)" pp_pred p
  | And (p, q) -> Format.fprintf fmt "(%a and %a)" pp_pred p pp_pred q
  | Or (p, q) -> Format.fprintf fmt "(%a or %a)" pp_pred p pp_pred q

let pp_agg fmt = function
  | Count_all -> Format.pp_print_string fmt "count(*)"
  | Count_distinct c -> Format.fprintf fmt "count(distinct #%d)" c
  | Min_col c -> Format.fprintf fmt "min(#%d)" c
  | Max_col c -> Format.fprintf fmt "max(#%d)" c

let rec pp fmt = function
  | Scan t -> Format.fprintf fmt "scan(%s)" (Table.name t)
  | Select (p, q) -> Format.fprintf fmt "select[%a](%a)" pp_pred p pp q
  | Project (cols, q) ->
    Format.fprintf fmt "project[%s](%a)"
      (String.concat "," (Array.to_list (Array.map string_of_int cols)))
      pp q
  | Hash_join (keys, l, r) ->
    Format.fprintf fmt "join[%s](%a, %a)"
      (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d=%d" a b) keys))
      pp l pp r
  | Semi_join (keys, l, r) ->
    Format.fprintf fmt "semijoin[%s](%a, %a)"
      (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d=%d" a b) keys))
      pp l pp r
  | Anti_join (keys, l, r) ->
    Format.fprintf fmt "antijoin[%s](%a, %a)"
      (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d=%d" a b) keys))
      pp l pp r
  | Product (l, r) -> Format.fprintf fmt "product(%a, %a)" pp l pp r
  | Union (l, r) -> Format.fprintf fmt "union(%a, %a)" pp l pp r
  | Diff (l, r) -> Format.fprintf fmt "diff(%a, %a)" pp l pp r
  | Distinct q -> Format.fprintf fmt "distinct(%a)" pp q
  | Group_by (keys, aggs, having, q) ->
    Format.fprintf fmt "groupby[%s;%s;%a](%a)"
      (String.concat "," (Array.to_list (Array.map string_of_int keys)))
      (String.concat ","
         (Array.to_list (Array.map (Format.asprintf "%a" pp_agg) aggs)))
      pp_pred having pp q

let to_string p = Format.asprintf "%a" pp p
