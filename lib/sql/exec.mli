(** Plan evaluator: hash joins (build side right), hash semi/anti
    joins, hash aggregation. *)

val eval_pred : Algebra.pred -> int array -> bool

val run : Algebra.plan -> int array list
(** Materialise a plan's result rows (dictionary codes). *)

val count : Algebra.plan -> int
val is_empty : Algebra.plan -> bool
