(** Repair planning: from detecting constraint violations to
    proposing a tuple-deletion set that restores every registered
    constraint.

    Three planners behind one interface, following the
    Livshits–Kimelfeld cardinality-repair dichotomy ("The Complexity
    of Computing a Cardinality Repair for Functional Dependencies"):

    - {e exact} — provably minimum-cardinality deletion sets for the
      tractable FD classes: every constraint must be FD-shaped
      ({!Core.Fd_check.recognize_fd}) and, per relation, the lhs sets
      must form a chain under inclusion (single FDs and lhs-chains —
      the dichotomy's P side).  Solved by per-equivalence-class
      max-keep recursion, seeded off the violation cubes
      ({!Core.Fd_check.violating_lhs}) so clean groups are never
      materialised.  @raise Not_tractable otherwise.
    - {e greedy} — the general case: repeatedly delete the whole
      supporting row-set of the grounded-atom pattern whose removal
      kills the most remaining violation witnesses (ties toward the
      smallest row-set), scored by restrict-and-count over the
      violation BDDs ({!Core.Violations.patterns}).
    - {e brute} — exhaustive minimum search over candidate subsets,
      checked by the naive evaluator; a reference for tiny instances,
      used only by tests.

    Planning is read-only: it runs on a deep clone of the database
    (fresh dictionaries, fresh tables, fresh index), so a plan can be
    inspected before — or instead of — being applied. *)

type strategy = Exact | Greedy | Brute

val strategy_name : strategy -> string
val strategy_of_string : string -> (strategy, string) result

exception Not_tractable of string
(** The exact planner's refusal: a constraint is not FD-shaped, or a
    relation's lhs sets do not form a chain (the dichotomy's NP-hard
    side) — use [Greedy]. *)

type deletion = {
  table : string;
  row : Fcv_relation.Value.t list;  (** decoded *)
  cells : string list;  (** textual, protocol-/WAL-ready *)
  blame : float;
      (** the planner's score for this deletion — {b two different
          quantities} depending on the planner, never comparable
          across planners: greedy records its pattern's {e exact} kill
          count ({!Core.Violations.patterns}' [p_kills]) at selection
          time; exact/brute record the per-row
          {!Core.Violations.blame} against the pre-repair state, which
          is an {e upper bound} on the witnesses the deletion kills
          (rows sharing the row's pattern projection share full
          credit) *)
}

type plan = {
  strategy : strategy;
  deletions : deletion list;  (** deterministic order *)
  violated_before : int;  (** constraints violated before the repair *)
  violated_after : int;
  witnesses_before : float;  (** total violation witnesses before *)
  witnesses_after : float;
  complete : bool;  (** the deletions restore every constraint *)
  elapsed_ms : float;
}

val clone_db : Fcv_relation.Database.t -> Fcv_relation.Database.t
(** Deep copy: fresh dictionaries re-interned in code order (codes
    coincide with the source's) and fresh tables with copied rows —
    unlike {!Core.Index_io.load_string}, nothing is shared. *)

val plan :
  ?strategy:strategy ->
  ?max_deletions:int ->
  ?max_nodes:int ->
  ?witness_limit:int ->
  Fcv_relation.Database.t ->
  Core.Formula.t list ->
  plan
(** Compute a deletion set restoring [formulas] on [db] (default
    strategy [Greedy]).  [db] is not touched — planning runs on a
    {!clone_db} scratch.  [max_deletions] caps the set (a capped plan
    reports [complete = false] if violations remain); [witness_limit]
    (default 256) bounds the witnesses attributed per constraint per
    round in the greedy/brute candidate harvest.
    @raise Not_tractable from the exact planner on intractable input.
    @raise Invalid_argument from the brute planner on non-tiny
    instances. *)

val plan_specs :
  ?strategy:strategy ->
  ?max_deletions:int ->
  ?max_nodes:int ->
  ?witness_limit:int ->
  Fcv_relation.Database.t ->
  Core.Formula.spec list ->
  plan
(** {!plan} over constraint specs: the greedy planner's violated
    re-filter (and the before/after measurements) go through
    {!Core.Checker.check_spec}, so a soft constraint stops costing
    deletions as soon as its violation rate clears its threshold.
    The exact and brute planners ignore thresholds — their optimality
    arguments are about full (zero-violation) repairs — but still
    report spec-aware before/after counts.  [plan db formulas] is
    [plan_specs db (List.map Core.Formula.hard formulas)]. *)

val apply_to : plan -> Fcv_relation.Database.t -> int
(** Apply the plan's deletions to [db]'s base tables (first matching
    row each); the number actually removed.  For callers that keep
    plain databases — the serving tier instead replays the deletions
    through its own journaled mutation path. *)

val plan_json : plan -> Fcv_util.Telemetry.json
(** The wire/CLI shape: strategy, deletions (table, row, blame),
    before/after counts, completeness, latency. *)
