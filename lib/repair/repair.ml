(** Repair planners — see repair.mli for the contract.  The exact
    planner implements the P side of the Livshits–Kimelfeld
    cardinality-repair dichotomy (lhs-chain FD sets) by
    per-equivalence-class max-keep recursion seeded off the violation
    cubes; the greedy planner is the general-case blame loop over
    restrict-and-count scores; the brute planner is the tests'
    reference minimum. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry
module F = Core.Formula

type strategy = Exact | Greedy | Brute

let strategy_name = function Exact -> "exact" | Greedy -> "greedy" | Brute -> "brute"

let strategy_of_string = function
  | "exact" -> Ok Exact
  | "greedy" -> Ok Greedy
  | "brute" -> Ok Brute
  | s -> Error (Printf.sprintf "unknown repair strategy %S (exact|greedy|brute)" s)

exception Not_tractable of string

let not_tractable fmt = Printf.ksprintf (fun s -> raise (Not_tractable s)) fmt

type deletion = {
  table : string;
  row : R.Value.t list;
  cells : string list;
  blame : float;
}

type plan = {
  strategy : strategy;
  deletions : deletion list;
  violated_before : int;
  violated_after : int;
  witnesses_before : float;
  witnesses_after : float;
  complete : bool;
  elapsed_ms : float;
}

(* -- the scratch copy ------------------------------------------------------- *)

(* Deep clone: re-interning each dictionary's values in code order
   reproduces the source's codes, so coded rows copy verbatim and any
   plan computed on the clone names the same values as the original.
   (Index_io.load_string deliberately SHARES the db — unusable for a
   read-only planner.) *)
let clone_db db =
  let copy = R.Database.create () in
  List.iter
    (fun dname ->
      let dst = R.Database.domain copy dname in
      List.iter
        (fun v -> ignore (R.Dict.intern dst v))
        (R.Dict.to_list (R.Database.domain db dname)))
    (R.Database.domain_names db);
  List.iter
    (fun tname ->
      let src = R.Database.table db tname in
      let attrs =
        Array.to_list
          (Array.map
             (fun a -> (a.R.Schema.name, a.R.Schema.domain))
             (R.Table.schema src))
      in
      let dst = R.Database.create_table copy ~name:tname ~attrs in
      R.Table.iter src (fun row -> R.Table.insert_coded dst (Array.copy row)))
    (R.Database.table_names db);
  copy

type scratch = { db : R.Database.t; index : Core.Index.t }

let scratch ?(max_nodes = 0) db formulas =
  let db = clone_db db in
  let index = Core.Index.create ~max_nodes db in
  Core.Checker.ensure_indices index formulas;
  { db; index }

(* (violated constraints, total violation witnesses).  Spec-aware: a
   soft constraint counts as violated only while its rate is over
   threshold ({!Core.Checker.check_spec}).  A violated bare
   existential has no finite witness; it still counts one. *)
let measure s specs =
  let violated = ref 0 and wit = ref 0. in
  List.iter
    (fun spec ->
      let r = Core.Checker.check_spec s.index spec in
      if r.Core.Checker.outcome = Core.Checker.Violated then begin
        incr violated;
        match Core.Violations.count s.index spec.F.formula with
        | Some c -> wit := !wit +. c
        | None -> wit := !wit +. 1.
      end)
    specs;
  (!violated, !wit)

let delete s ~table row =
  ignore (Core.Index.delete s.index ~table_name:table row)

(* -- exact: the dichotomy's P side ------------------------------------------ *)

(* Maximum sub-multiset of [rows] satisfying the FD list (positions
   into the rows; the lhs sets form a chain ordered by inclusion).
   Group by the first lhs; within a group every kept row must agree on
   the rhs, so partition by rhs code, solve the remaining FDs inside
   each partition independently (their lhs refine this one), and keep
   the best partition — ties broken toward the smaller rhs code so
   plans are deterministic. *)
let rec max_keep rows = function
  | [] -> rows
  | (lhs_pos, rhs_pos) :: rest ->
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun row ->
        let key = List.map (fun p -> row.(p)) lhs_pos in
        match Hashtbl.find_opt groups key with
        | None ->
          Hashtbl.add groups key (ref [ row ]);
          order := key :: !order
        | Some l -> l := row :: !l)
      rows;
    List.concat_map
      (fun key ->
        let grp = List.rev !(Hashtbl.find groups key) in
        let parts = Hashtbl.create 4 in
        let porder = ref [] in
        List.iter
          (fun row ->
            let k = row.(rhs_pos) in
            match Hashtbl.find_opt parts k with
            | None ->
              Hashtbl.add parts k (ref [ row ]);
              porder := k :: !porder
            | Some l -> l := row :: !l)
          grp;
        let scored =
          List.map
            (fun k -> (k, max_keep (List.rev !(Hashtbl.find parts k)) rest))
            (List.rev !porder)
        in
        let better (k1, kept1) (k2, kept2) =
          let n1 = List.length kept1 and n2 = List.length kept2 in
          if n1 <> n2 then n1 > n2 else k1 < k2
        in
        match
          List.fold_left
            (fun acc cand ->
              match acc with
              | None -> Some cand
              | Some best -> if better cand best then Some cand else Some best)
            None scored
        with
        | Some (_, kept) -> kept
        | None -> [])
      (List.rev !order)

(* Recognise every constraint as an FD and check tractability: per
   relation, the lhs attribute sets must form a chain under
   inclusion. *)
let recognize_chain db formulas =
  let fds =
    List.map
      (fun f ->
        match Core.Fd_check.recognize_fd db f with
        | Some (rel, lhs, rhs) -> (rel, (lhs, rhs))
        | None ->
          not_tractable "constraint is not FD-shaped: %s" (F.to_string f))
      formulas
  in
  let rels = List.sort_uniq compare (List.map fst fds) in
  List.map
    (fun rel ->
      let pairs = List.filter_map (fun (r, p) -> if r = rel then Some p else None) fds in
      let sorted =
        List.sort
          (fun (l1, _) (l2, _) -> compare (List.length l1, l1) (List.length l2, l2))
          pairs
      in
      let rec chain = function
        | (l1, _) :: ((l2, _) :: _ as rest) ->
          if List.for_all (fun a -> List.mem a l2) l1 then chain rest
          else
            not_tractable
              "FD lhs sets {%s} and {%s} on %s do not form a chain — the dichotomy's \
               NP-hard side; use the greedy planner"
              (String.concat "," l1) (String.concat "," l2) rel
        | _ -> ()
      in
      chain sorted;
      (rel, sorted))
    rels

(* Minimum deletion set, per relation: find the lhs values of the
   first (coarsest) FD that any FD's violation cubes hit, materialise
   only those equivalence classes, and keep the max-keep complement.
   FDs are denial constraints, so deletions never create new
   violations and one pass suffices. *)
let exact s formulas =
  let per_rel = recognize_chain s.db formulas in
  List.concat_map
    (fun (rel, fds) ->
      let table = R.Database.table s.db rel in
      let schema = R.Table.schema table in
      let pos = R.Schema.position schema in
      let first_lhs = fst (List.hd fds) in
      let first_pos = List.map pos first_lhs in
      let hot = Hashtbl.create 16 in
      List.iter
        (fun (lhs, rhs) ->
          (* positions of the first lhs inside this (superset) lhs *)
          let proj =
            List.map
              (fun a ->
                let rec idx i = function
                  | [] -> assert false (* chain: first_lhs ⊆ lhs *)
                  | x :: _ when x = a -> i
                  | _ :: tl -> idx (i + 1) tl
                in
                (idx 0 lhs, pos a))
              first_lhs
          in
          List.iter
            (fun values ->
              let key =
                List.map
                  (fun (i, col) ->
                    match R.Dict.code (R.Table.dict table col) (List.nth values i) with
                    | Some c -> c
                    | None -> assert false (* decoded from this very dict *))
                  proj
              in
              Hashtbl.replace hot key ())
            (Core.Fd_check.violating_lhs s.index ~table_name:rel ~lhs ~rhs:[ rhs ]))
        fds;
      if Hashtbl.length hot = 0 then []
      else begin
        let hot_rows =
          List.filter
            (fun row -> Hashtbl.mem hot (List.map (fun p -> row.(p)) first_pos))
            (R.Table.to_list table)
        in
        let spec = List.map (fun (lhs, rhs) -> (List.map pos lhs, pos rhs)) fds in
        let kept = max_keep hot_rows spec in
        let kcount = Hashtbl.create 16 in
        List.iter
          (fun row ->
            let k = Array.to_list row in
            Hashtbl.replace kcount k
              (1 + Option.value (Hashtbl.find_opt kcount k) ~default:0))
          kept;
        List.filter_map
          (fun row ->
            let k = Array.to_list row in
            match Hashtbl.find_opt kcount k with
            | Some n when n > 0 ->
              Hashtbl.replace kcount k (n - 1);
              None
            | _ -> Some (rel, row))
          hot_rows
      end)
    per_rel
  |> List.sort (fun (t1, r1) (t2, r2) -> compare (t1, Array.to_list r1) (t2, Array.to_list r2))

(* -- greedy: the general-case blame loop ------------------------------------ *)

(* Repeatedly delete the whole supporting row-set of the grounded
   positive-atom pattern whose removal kills the most remaining
   violation witnesses (kill counts summed across violated
   constraints; ties toward the smallest row-set, then the smallest
   (table, pattern) — row-level moves can waste deletions on a
   duplicated projection, pattern-level moves cannot).  Loops until
   clean, the budget runs out, or no violated constraint yields a
   supported pattern (a violated bare existential needs insertions,
   not deletions).  Terminates: every round removes at least one
   existing row.

   Spec-aware: the violated re-filter uses {!Core.Checker.check_spec},
   so a soft constraint drops out of the loop — and stops costing
   deletions — as soon as its violation rate clears its threshold,
   rather than being driven all the way to zero witnesses. *)
let greedy ?(max_deletions = max_int) ~witness_limit s specs =
  let deletions = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let violated =
      List.filter_map
        (fun spec ->
          if
            (Core.Checker.check_spec s.index spec).Core.Checker.outcome
            = Core.Checker.Violated
          then Some spec.F.formula
          else None)
        specs
    in
    if violated = [] || List.length !deletions >= max_deletions then continue_ := false
    else begin
      (* candidate patterns, kill counts summed across constraints *)
      let moves = Hashtbl.create 32 in
      List.iter
        (fun f ->
          match Core.Violations.analyze s.index f with
          | None -> ()
          | Some a ->
            List.iter
              (fun p ->
                if p.Core.Violations.p_rows <> [] then begin
                  let key =
                    ( p.Core.Violations.p_table,
                      Array.to_list p.Core.Violations.p_pattern )
                  in
                  let kills =
                    p.Core.Violations.p_kills
                    +.
                    match Hashtbl.find_opt moves key with
                    | Some (_, k) -> k
                    | None -> 0.
                  in
                  Hashtbl.replace moves key (p.Core.Violations.p_rows, kills)
                end)
              (Core.Violations.patterns ~limit:witness_limit a);
            Core.Violations.release a)
        violated;
      let better (k1, (r1, s1)) (k2, (r2, s2)) =
        if s1 <> s2 then s1 > s2
        else
          let n1 = List.length r1 and n2 = List.length r2 in
          if n1 <> n2 then n1 < n2 else k1 < k2
      in
      match
        Hashtbl.fold
          (fun key v acc ->
            match acc with
            | Some best when better best (key, v) -> acc
            | _ -> Some (key, v))
          moves None
      with
      | None -> continue_ := false
      | Some ((table, _), (rows, kills)) ->
        let budget = max_deletions - List.length !deletions in
        let take = List.filteri (fun i _ -> i < budget) rows in
        List.iter
          (fun row ->
            delete s ~table row;
            deletions := (table, row, kills) :: !deletions)
          take;
        if List.length take < List.length rows then continue_ := false
    end
  done;
  List.rev !deletions

(* -- brute force: the tests' reference minimum ------------------------------ *)

let rec combos k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest -> List.map (fun c -> x :: c) (combos (k - 1) rest) @ combos k rest

(* Candidate pool: every tuple participating in any violated
   constraint's witnesses. *)
let candidates ~witness_limit s formulas =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun f ->
      match Core.Violations.analyze s.index f with
      | None -> ()
      | Some a ->
        List.iter
          (fun (t, row) -> Hashtbl.replace seen (t, Array.to_list row) ())
          (Core.Violations.participants ~limit:witness_limit a);
        Core.Violations.release a)
    formulas;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  |> List.map (fun (t, row) -> (t, Array.of_list row))

(* Exhaustive minimum: subsets of the candidate pool by increasing
   size, each checked on a fresh clone with the naive evaluator. *)
let brute ?(max_deletions = max_int) ~witness_limit s formulas =
  let cands = candidates ~witness_limit s formulas in
  if List.length cands > 16 then
    invalid_arg
      (Printf.sprintf
         "Repair: the brute-force planner is a tiny-instance reference (%d candidate \
          tuples; limit 16)"
         (List.length cands));
  let check_subset subset =
    let db = clone_db s.db in
    List.for_all (fun (t, row) -> R.Table.delete_coded (R.Database.table db t) row) subset
    && List.for_all (fun f -> Core.Naive_eval.holds db f) formulas
  in
  let cap = min max_deletions (List.length cands) in
  let rec go k =
    if k > cap then []
    else
      match List.find_opt check_subset (combos k cands) with
      | Some subset -> subset
      | None -> go (k + 1)
  in
  go 0

(* -- the planner ------------------------------------------------------------ *)

(* Blame of each tuple against the PRE-repair state, summed across
   constraints — the exact/brute planners' report column.  NOT the
   same quantity as the greedy loop's selection score:
   {!Core.Violations.blame} is an UPPER BOUND on the witnesses killed
   by deleting the row (rows sharing the row's pattern projection
   share full credit), while greedy records the exact pattern kill
   count ({!Core.Violations.patterns}' [p_kills]) at selection time.
   Never compare the [deletion.blame] column across planners. *)
let blame_map s formulas tuples =
  let totals = Hashtbl.create 64 in
  List.iter
    (fun f ->
      match Core.Violations.analyze s.index f with
      | None -> ()
      | Some a ->
        List.iter
          (fun (table, row) ->
            let b = Core.Violations.blame a ~table ~row in
            (* blame is a count read off restrict-and-count: any
               negative or non-finite value means the index and the
               analyzer disagree about the violation space *)
            assert (b >= 0. && Float.is_finite b);
            if b <> 0. then begin
              let key = (table, Array.to_list row) in
              Hashtbl.replace totals key
                (b +. Option.value (Hashtbl.find_opt totals key) ~default:0.)
            end)
          tuples;
        Core.Violations.release a)
    formulas;
  fun table row ->
    Option.value (Hashtbl.find_opt totals (table, Array.to_list row)) ~default:0.

let plan_specs ?(strategy = Greedy) ?max_deletions ?max_nodes ?(witness_limit = 256) db
    (specs : F.spec list) =
  T.with_span "repair.plan" @@ fun () ->
  let t0 = Fcv_util.Timer.now () in
  let formulas = List.map (fun (sp : F.spec) -> sp.F.formula) specs in
  let s = scratch ?max_nodes db formulas in
  let violated_before, witnesses_before = measure s specs in
  let deletions =
    match strategy with
    | Greedy -> greedy ?max_deletions ~witness_limit s specs
    | Exact | Brute ->
      (* the exact and brute planners target zero violations: their
         optimality arguments are about full repairs, so thresholds
         are ignored here (every spec is driven clean) — though the
         before/after measurements above stay spec-aware *)
      let tuples =
        if strategy = Exact then exact s formulas
        else brute ?max_deletions ~witness_limit s formulas
      in
      let tuples =
        match max_deletions with
        | Some n -> List.filteri (fun i _ -> i < n) tuples
        | None -> tuples
      in
      let blame_of = blame_map s formulas tuples in
      List.map
        (fun (t, row) ->
          delete s ~table:t row;
          (t, row, blame_of t row))
        tuples
  in
  let violated_after, witnesses_after = measure s specs in
  let deletions =
    List.map
      (fun (t, row, b) ->
        let values = Array.to_list (R.Table.decode (R.Database.table s.db t) row) in
        { table = t; row = values; cells = List.map R.Value.to_string values; blame = b })
      deletions
  in
  if T.enabled () then begin
    T.incr (T.counter "repair.plans");
    T.incr ~by:(List.length deletions) (T.counter "repair.deletions");
    if violated_after > 0 then T.incr (T.counter "repair.incomplete")
  end;
  {
    strategy;
    deletions;
    violated_before;
    violated_after;
    witnesses_before;
    witnesses_after;
    complete = violated_after = 0;
    elapsed_ms = (Fcv_util.Timer.now () -. t0) *. 1000.;
  }

let plan ?strategy ?max_deletions ?max_nodes ?witness_limit db formulas =
  plan_specs ?strategy ?max_deletions ?max_nodes ?witness_limit db
    (List.map F.hard formulas)

let apply_to plan db =
  List.fold_left
    (fun acc d ->
      let table = R.Database.table db d.table in
      let coded =
        List.mapi
          (fun j v -> R.Dict.code (R.Table.dict table j) v)
          d.row
      in
      if List.for_all Option.is_some coded then
        let row = Array.of_list (List.map Option.get coded) in
        if R.Table.delete_coded table row then acc + 1 else acc
      else acc)
    0 plan.deletions

(* -- wire shape ------------------------------------------------------------- *)

let deletion_json d =
  T.Obj
    [
      ("table", T.String d.table);
      ("row", T.List (List.map (fun c -> T.String c) d.cells));
      ("blame", T.Float d.blame);
    ]

let plan_json p =
  T.Obj
    [
      ("strategy", T.String (strategy_name p.strategy));
      ("deletions", T.List (List.map deletion_json p.deletions));
      ("violated_before", T.Int p.violated_before);
      ("violated_after", T.Int p.violated_after);
      ("witnesses_before", T.Float p.witnesses_before);
      ("witnesses_after", T.Float p.witnesses_after);
      ("complete", T.Bool p.complete);
      ("ms", T.Float p.elapsed_ms);
    ]
