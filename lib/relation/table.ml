(** In-memory row store.  Rows are arrays of dictionary codes; the
    per-attribute dictionaries are shared with the owning database's
    domains.  This is the base-relation substrate under both the BDD
    logical index and the SQL baseline engine. *)

type t = {
  name : string;
  schema : Schema.t;
  dicts : Dict.t array;  (** one per attribute, aliasing database domains *)
  mutable rows : int array array;
  mutable nrows : int;
}

let create ~name ~schema ~dicts =
  if Array.length dicts <> Schema.arity schema then
    invalid_arg "Table.create: dicts/schema arity mismatch";
  { name; schema; dicts; rows = Array.make 16 [||]; nrows = 0 }

let name t = t.name
let schema t = t.schema
let arity t = Schema.arity t.schema
let cardinality t = t.nrows
let dict t i = t.dicts.(i)

let row t i =
  if i < 0 || i >= t.nrows then invalid_arg "Table.row: index out of range";
  t.rows.(i)

let grow t =
  if t.nrows >= Array.length t.rows then begin
    let rows' = Array.make (2 * Array.length t.rows) [||] in
    Array.blit t.rows 0 rows' 0 t.nrows;
    t.rows <- rows'
  end

(** Append an already-coded row (no dictionary interning). *)
let insert_coded t codes =
  if Array.length codes <> arity t then invalid_arg "Table.insert_coded: arity";
  Array.iteri
    (fun i c ->
      if c < 0 || c >= Dict.size t.dicts.(i) then
        invalid_arg "Table.insert_coded: code out of domain")
    codes;
  grow t;
  t.rows.(t.nrows) <- codes;
  t.nrows <- t.nrows + 1

(** Append a row of values, interning new values into the domains. *)
let insert t values =
  if Array.length values <> arity t then invalid_arg "Table.insert: arity";
  let codes = Array.mapi (fun i v -> Dict.intern t.dicts.(i) v) values in
  grow t;
  t.rows.(t.nrows) <- codes;
  t.nrows <- t.nrows + 1;
  codes

(** Delete the first row equal to [codes]; returns whether a row was
    removed.  Order is not preserved (swap-with-last). *)
let delete_coded t codes =
  let rec find i =
    if i >= t.nrows then None
    else if t.rows.(i) = codes then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
    t.rows.(i) <- t.rows.(t.nrows - 1);
    t.nrows <- t.nrows - 1;
    true

let iter t f =
  for i = 0 to t.nrows - 1 do
    f t.rows.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.nrows - 1 do
    acc := f !acc t.rows.(i)
  done;
  !acc

let to_list t = List.init t.nrows (fun i -> t.rows.(i))

(** Decode a row back to values. *)
let decode t codes = Array.mapi (fun i c -> Dict.value t.dicts.(i) c) codes

let mem_coded t codes =
  let rec go i = i < t.nrows && (t.rows.(i) = codes || go (i + 1)) in
  go 0

(** Active-domain size of attribute [i] (current dictionary size). *)
let dom_size t i = Dict.size t.dicts.(i)

(** Distinct rows (the BDD encodes a set; duplicate rows are one model). *)
let distinct_count t =
  let seen = Hashtbl.create (max 16 t.nrows) in
  let count = ref 0 in
  iter t (fun r ->
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.add seen r ();
        incr count
      end);
  !count

let pp fmt t =
  Format.fprintf fmt "%s%a [%d rows]" t.name Schema.pp t.schema t.nrows
