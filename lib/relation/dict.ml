(** A dictionary maps the values of one {e domain} to dense integer
    codes in [0, size).  Dictionaries are owned by the {!Database} and
    shared by every attribute declared over the same domain, so
    equality of codes coincides with equality of values across tables —
    the property the rename-based equi-join relies on. *)

type t = {
  name : string;
  mutable values : Value.t array;
  mutable size : int;
  index : (Value.t, int) Hashtbl.t;
}

let create ?(capacity = 16) name =
  {
    name;
    values = Array.make (max capacity 1) (Value.Int 0);
    size = 0;
    index = Hashtbl.create (max capacity 16);
  }

let name t = t.name
let size t = t.size

(** Code of [v], assigning the next free code if [v] is new. *)
let intern t v =
  match Hashtbl.find_opt t.index v with
  | Some c -> c
  | None ->
    let c = t.size in
    if c >= Array.length t.values then begin
      let values' = Array.make (2 * Array.length t.values) (Value.Int 0) in
      Array.blit t.values 0 values' 0 t.size;
      t.values <- values'
    end;
    t.values.(c) <- v;
    t.size <- t.size + 1;
    Hashtbl.replace t.index v c;
    c

(** Code of [v] if already present. *)
let code t v = Hashtbl.find_opt t.index v

(** Value of a code. *)
let value t c =
  if c < 0 || c >= t.size then invalid_arg "Dict.value: code out of range";
  t.values.(c)

let mem t v = Hashtbl.mem t.index v

(** Pre-populate a domain with [n] integer values [0..n-1]; convenient
    for synthetic data where codes and values coincide. *)
let of_int_range name n =
  let t = create ~capacity:n name in
  for i = 0 to n - 1 do
    ignore (intern t (Value.Int i))
  done;
  t

let to_list t = List.init t.size (fun c -> t.values.(c))
