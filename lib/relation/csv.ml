(** Minimal CSV reader/writer (RFC-4180 quoting) so the CLI and
    examples can load real-looking data files. *)

(** Parse one CSV record that is already known to be a full record
    (no embedded newlines handled here; [read_channel] deals with
    those). *)
let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv.parse_line: unterminated quote"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** Read all records from a file; the first record is the header.
    Returns [(header, rows)]. *)
let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           let line =
             (* tolerate CRLF *)
             if String.length line > 0 && line.[String.length line - 1] = '\r' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           if line <> "" then records := parse_line line :: !records
         done
       with End_of_file -> ());
      match List.rev !records with
      | [] -> failwith "Csv.read_file: empty file"
      | header :: rows -> (header, rows))

(** Load a CSV into a fresh table of [db].  Every attribute is typed by
    a domain named [table_name.attr] unless [domains] overrides it. *)
let load_table db ~name ~path ?(domains = []) () =
  let header, rows = read_file path in
  let attrs =
    List.map
      (fun h ->
        match List.assoc_opt h domains with
        | Some d -> (h, d)
        | None -> (h, name ^ "." ^ h))
      header
  in
  let table = Database.create_table db ~name ~attrs in
  List.iter
    (fun fields ->
      if List.length fields <> List.length header then
        failwith "Csv.load_table: ragged row";
      ignore (Table.insert table (Array.of_list (List.map Value.of_string fields))))
    rows;
  table

(** Write a table out as CSV (decoded values). *)
let write_table table path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (String.concat "," (List.map escape_field (Schema.attr_names (Table.schema table))));
      output_char oc '\n';
      Table.iter table (fun row ->
          let values = Table.decode table row in
          output_string oc
            (String.concat ","
               (Array.to_list (Array.map (fun v -> escape_field (Value.to_string v)) values)));
          output_char oc '\n'))
