(** In-memory row store over dictionary codes; the base-relation
    substrate under both the BDD logical index and the SQL engine. *)

type t

val create : name:string -> schema:Schema.t -> dicts:Dict.t array -> t
(** [dicts] alias the owning database's domains, one per attribute. *)

val name : t -> string
val schema : t -> Schema.t
val arity : t -> int
val cardinality : t -> int
val dict : t -> int -> Dict.t

val row : t -> int -> int array
(** The i-th row (do not mutate). @raise Invalid_argument *)

val insert_coded : t -> int array -> unit
(** Append a coded row.
    @raise Invalid_argument on arity or domain-range mismatch. *)

val insert : t -> Value.t array -> int array
(** Append values, interning new ones; returns the coded row. *)

val delete_coded : t -> int array -> bool
(** Remove the first row equal to the argument (swap-with-last); did
    anything get removed? *)

val iter : t -> (int array -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
val to_list : t -> int array list
val decode : t -> int array -> Value.t array
val mem_coded : t -> int array -> bool

val dom_size : t -> int -> int
(** Active-domain size of an attribute (its dictionary's size). *)

val distinct_count : t -> int
val pp : Format.formatter -> t -> unit
