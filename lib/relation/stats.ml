(** Statistical measures over relations: entropy, conditional entropy,
    information gain (for MaxInf-Gain) and the membership-probability
    measure φ / Φ (for Prob-Converge) — Definitions 1 and §3.2 of the
    paper.  All logarithms are base 2.

    Projections are counted by packing the projected codes into a
    single mixed-radix integer key when the radix product fits in 62
    bits (always true for the paper's workloads), with a list-keyed
    fallback otherwise. *)

let log2 x = log x /. log 2.

(* Mixed-radix packing of a projection; returns None on overflow. *)
let radix_product table attrs =
  let rec go acc = function
    | [] -> Some acc
    | a :: rest ->
      let d = max 1 (Table.dom_size table a) in
      if acc > max_int / d then None else go (acc * d) rest
  in
  go 1 attrs

(** Multiset of projected rows: key -> occurrence count. *)
let counts table attrs =
  let tbl = Hashtbl.create 1024 in
  let bump k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  (match radix_product table attrs with
  | Some _ ->
    Table.iter table (fun row ->
        let key =
          List.fold_left
            (fun acc a -> (acc * max 1 (Table.dom_size table a)) + row.(a))
            0 attrs
        in
        bump (`Packed key))
  | None ->
    Table.iter table (fun row -> bump (`List (List.map (fun a -> row.(a)) attrs))));
  tbl

(** Number of distinct projected tuples. *)
let distinct table attrs = Hashtbl.length (counts table attrs)

(** Shannon entropy H(v̄) of the projection distribution
    p(v̄ = x̄) = ‖R|v̄=x̄‖ / ‖R‖. *)
let entropy table attrs =
  let n = float_of_int (Table.cardinality table) in
  if n = 0. then 0.
  else
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. n in
        acc -. (p *. log2 p))
      (counts table attrs) 0.

(** Conditional entropy H(v′ | v̄) via the chain rule
    H(v′|v̄) = H(v̄, v′) − H(v̄). *)
let cond_entropy table ~given ~attr =
  entropy table (given @ [ attr ]) -. entropy table given

(** Information gain I(v̄; v′) = H(v′) − H(v′ | v̄).

    The paper's Definition 1 writes I(v̄;v′) = H(v̄) − H(v′|v̄), which
    is not the quantity ID3 maximises and is inconsistent with the
    algorithm's name; we implement the standard (ID3/Quinlan) gain and
    record the deviation in DESIGN.md. *)
let info_gain table ~given ~attr =
  entropy table [ attr ] -. cond_entropy table ~given ~attr

(** φ(v̄ = x̄): probability that a uniformly random completion of the
    partial tuple x̄ over the remaining attributes' active domains
    falls in R (§3.2). *)
let phi table ~attrs ~all_attrs =
  let rest = List.filter (fun a -> not (List.mem a attrs)) all_attrs in
  let completions =
    List.fold_left (fun acc a -> acc *. float_of_int (max 1 (Table.dom_size table a))) 1. rest
  in
  let cnts = counts table attrs in
  Hashtbl.fold (fun k c acc -> (k, float_of_int c /. completions) :: acc) cnts []

(** Φ(v̄) = −Σ_x̄ φ log₂ φ — the entropy-like convergence measure of
    Prob-Converge.  The paper omits the minus sign while asserting
    Φ(V) = 0 and using argmin; we normalise to Φ ≥ 0 (see DESIGN.md).
    Terms with φ ∈ {0, 1} contribute 0. *)
let phi_measure table ~attrs ~all_attrs =
  List.fold_left
    (fun acc (_, p) ->
      if p <= 0. || p >= 1. then acc else acc -. (p *. log2 p))
    0.
    (phi table ~attrs ~all_attrs)

(** Does the functional dependency [lhs → rhs] hold?  (Used by the
    implication-constraint experiments and by tests.) *)
let fd_holds table ~lhs ~rhs =
  distinct table (lhs @ rhs) = distinct table lhs
