(** Atomic attribute values; the system is dictionary-encoded, so
    values appear only at the edges (loading, display). *)

type t = Int of int | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string

val of_string : string -> t
(** Parse a CSV cell: integers become [Int], everything else [Str]. *)

val pp : Format.formatter -> t -> unit
