(** A database: named domains (shared dictionaries) plus named tables
    whose attributes reference those domains. *)

type t

val create : unit -> t

val domain : t -> string -> Dict.t
(** Get or lazily create a domain. *)

val add_domain : t -> Dict.t -> unit
(** Register a pre-built dictionary.
    @raise Invalid_argument on duplicate names. *)

val create_table : t -> name:string -> attrs:(string * string) list -> Table.t
(** [attrs] are [(attribute, domain)] pairs.
    @raise Invalid_argument on duplicate table names. *)

val table : t -> string -> Table.t
(** @raise Invalid_argument on unknown tables. *)

val table_opt : t -> string -> Table.t option
val table_names : t -> string list
val domain_names : t -> string list
