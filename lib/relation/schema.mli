(** Relation schemas: ordered named attributes typed by domain name. *)

type attr = { name : string; domain : string }

type t = attr array

val make : (string * string) list -> t
(** [(attribute, domain)] pairs.
    @raise Invalid_argument on duplicate attribute names. *)

val arity : t -> int
val attr_names : t -> string list

val position : t -> string -> int
(** @raise Not_found *)

val position_opt : t -> string -> int option
val domain_of : t -> int -> string
val pp : Format.formatter -> t -> unit
