(** Relation schemas: an ordered list of named attributes, each typed
    by the {e domain} (dictionary) it draws values from. *)

type attr = { name : string; domain : string }

type t = attr array

let make pairs : t =
  let a = Array.of_list (List.map (fun (name, domain) -> { name; domain }) pairs) in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun { name; _ } ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" name);
      Hashtbl.add seen name ())
    a;
  a

let arity (t : t) = Array.length t

let attr_names (t : t) = Array.to_list (Array.map (fun a -> a.name) t)

(** Position of attribute [name]. @raise Not_found *)
let position (t : t) name =
  let rec go i =
    if i >= Array.length t then raise Not_found
    else if t.(i).name = name then i
    else go (i + 1)
  in
  go 0

let position_opt t name = try Some (position t name) with Not_found -> None

let domain_of (t : t) i = t.(i).domain

let pp fmt (t : t) =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list (Array.map (fun a -> a.name ^ ":" ^ a.domain) t)))
