(** A domain dictionary: dense integer codes for the values of one
    domain.  Owned by the {!Database} and shared by every attribute
    declared over the domain, so code equality coincides with value
    equality across tables — the property the rename-based equi-join
    relies on. *)

type t

val create : ?capacity:int -> string -> t
val name : t -> string
val size : t -> int

val intern : t -> Value.t -> int
(** Code of a value, assigning the next free code if new. *)

val code : t -> Value.t -> int option
(** Code of a value if present. *)

val value : t -> int -> Value.t
(** @raise Invalid_argument on out-of-range codes. *)

val mem : t -> Value.t -> bool

val of_int_range : string -> int -> t
(** Domain pre-populated with [Int 0 .. Int (n-1)]; codes coincide
    with values (synthetic data convenience). *)

val to_list : t -> Value.t list
