(** Statistics behind the variable-ordering heuristics (Definition 1
    and §3.2 of the paper).  Logarithms are base 2; attributes are
    schema positions. *)

val counts :
  Table.t -> int list -> ([ `Packed of int | `List of int list ], int) Hashtbl.t
(** Multiset of projected rows. *)

val distinct : Table.t -> int list -> int

val entropy : Table.t -> int list -> float
(** H(v̄) of the projection distribution. *)

val cond_entropy : Table.t -> given:int list -> attr:int -> float
(** H(v′ | v̄) via the chain rule. *)

val info_gain : Table.t -> given:int list -> attr:int -> float
(** The ID3 gain I(v̄; v′) = H(v′) − H(v′|v̄).  (The paper's
    Definition 1 differs; see DESIGN.md and {!Core.Ordering}.) *)

val phi :
  Table.t ->
  attrs:int list ->
  all_attrs:int list ->
  ([ `Packed of int | `List of int list ] * float) list
(** φ(v̄ = x̄) per observed projection value: the probability that a
    uniformly random completion over the remaining active domains
    lands in R. *)

val phi_measure : Table.t -> attrs:int list -> all_attrs:int list -> float
(** Φ(v̄) = −Σ φ log₂ φ (normalised non-negative; see DESIGN.md on
    the paper's missing sign). *)

val fd_holds : Table.t -> lhs:int list -> rhs:int list -> bool
(** Does the functional dependency lhs → rhs hold? *)
