(** Encoding relations as ROBDDs (§2.2): the table's characteristic
    function over the finite-domain blocks of its attributes, under a
    chosen attribute ordering.

    Fast path: every row is packed into a single integer code under the
    ordering; the sorted, deduplicated code set feeds the direct
    {!Fcv_bdd.Of_codes} construction.  A naive OR-of-minterms builder
    is provided as a cross-checked reference and is also what
    incremental maintenance uses per update. *)

module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd

type t = {
  mgr : M.t;
  table : Table.t;
  order : int array;  (** order.(k) = schema position of the k-th shallowest attribute *)
  blocks : Fd.block array;  (** indexed by schema position *)
  mutable root : int;
}

(** Allocate one block per attribute in the given order (shallowest
    first) on [mgr]; the result array is indexed by schema position. *)
let alloc_blocks mgr table ~order =
  let arity = Table.arity table in
  if not (Fcv_util.Perm.is_permutation order) || Array.length order <> arity then
    invalid_arg "Encode.alloc_blocks: order must be a permutation of the attributes";
  let slots = Array.make arity None in
  Array.iter
    (fun a ->
      let attr = (Table.schema table).(a) in
      slots.(a) <-
        Some (Fd.alloc mgr ~name:attr.Schema.name ~dom_size:(max 1 (Table.dom_size table a))))
    order;
  Array.map (function Some b -> b | None -> assert false) slots

(** The minterm BDD of one coded row. *)
let minterm mgr blocks row =
  Fd.tuple_minterm mgr (List.init (Array.length row) (fun a -> (blocks.(a), row.(a))))

let total_width blocks order =
  Array.fold_left (fun acc a -> acc + Fd.width blocks.(a)) 0 order

(* Pack a row into a single integer under the ordering: the first
   attribute of the order occupies the most significant bits, matching
   Of_codes' MSB-first level convention. *)
let pack_row blocks order row =
  Array.fold_left
    (fun acc a -> (acc lsl Fd.width blocks.(a)) lor row.(a))
    0 order

(** Build the characteristic-function BDD of [table] on [mgr] using
    pre-allocated [blocks].  Requires the blocks' levels to be
    increasing along [order] (true when allocated by
    {!alloc_blocks} on a fresh region of the manager). *)
let build mgr table ~order ~blocks =
  if Table.cardinality table = 0 then M.zero
  else begin
    let w = total_width blocks order in
    let levels =
      Array.concat (List.map (fun a -> blocks.(a).Fd.levels) (Array.to_list order))
    in
    let increasing =
      let ok = ref true in
      for i = 1 to Array.length levels - 1 do
        if levels.(i - 1) >= levels.(i) then ok := false
      done;
      !ok
    in
    if w <= 62 && increasing then begin
      let codes = Array.make (Table.cardinality table) 0 in
      let i = ref 0 in
      Table.iter table (fun row ->
          codes.(!i) <- pack_row blocks order row;
          incr i);
      Array.sort compare codes;
      (* dedup in place *)
      let n = Array.length codes in
      let k = ref 1 in
      for j = 1 to n - 1 do
        if codes.(j) <> codes.(!k - 1) then begin
          codes.(!k) <- codes.(j);
          incr k
        end
      done;
      let codes = Array.sub codes 0 !k in
      Fcv_bdd.Of_codes.build mgr ~levels ~codes
    end
    else begin
      (* Balanced OR-merge of row minterms: correct for any level
         layout and keeps intermediate BDDs small. *)
      let leaves = Table.fold table ~init:[] ~f:(fun acc row -> minterm mgr blocks row :: acc) in
      let rec merge = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest -> O.bor mgr x y :: merge rest
      in
      let rec loop = function [ x ] -> x | l -> loop (merge l) in
      loop (if leaves = [] then [ M.zero ] else leaves)
    end
  end

(** Reference builder: plain left fold of OR over row minterms.  Used
    by tests to validate [build] and by Fig. 4(a) to contrast
    construction strategies. *)
let build_naive mgr table ~order:_ ~blocks =
  Table.fold table ~init:M.zero ~f:(fun acc row -> O.bor mgr acc (minterm mgr blocks row))

(** One-call convenience: fresh manager, blocks in [order], build. *)
let encode ?(max_nodes = 0) table ~order =
  let mgr = M.create ~max_nodes ~nvars:0 () in
  let blocks = alloc_blocks mgr table ~order in
  let root = build mgr table ~order ~blocks in
  { mgr; table; order; blocks; root }

let identity_order table = Array.init (Table.arity table) (fun i -> i)

(** BDD size (reachable node count) of the encoding. *)
let size t = M.node_count t.mgr t.root

(** Does the encoding contain this coded row? *)
let mem t row =
  let env = Array.make (M.nvars t.mgr) false in
  Array.iteri (fun a c -> Fd.set_env t.blocks.(a) c env) row;
  M.eval t.mgr t.root env

(** Incremental maintenance (§5.2 "update time"): OR in / carve out a
    single row's minterm. *)
let insert t row =
  Array.iteri
    (fun a c ->
      if c < 0 || c >= t.blocks.(a).Fd.dom_size then
        invalid_arg "Encode.insert: code outside the indexed domain (rebuild the index)")
    row;
  t.root <- O.bor t.mgr t.root (minterm t.mgr t.blocks row)

let delete t row =
  t.root <- O.bdiff t.mgr t.root (minterm t.mgr t.blocks row)
