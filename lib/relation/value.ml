(** Atomic attribute values.  The system is dictionary-encoded
    throughout — values appear only at the edges (loading, display);
    everything else operates on integer codes. *)

type t = Int of int | Str of string

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s

(** Parse a CSV cell: integers become [Int], everything else [Str]. *)
let of_string s =
  match int_of_string_opt s with Some i -> Int i | None -> Str s

let pp fmt v = Format.pp_print_string fmt (to_string v)
