(** A database: a set of named domains (shared dictionaries) and named
    tables whose attributes reference those domains.  Sharing
    dictionaries across tables makes codes comparable across tables,
    which both the SQL engine's joins and the BDD rename-based
    equi-join require. *)

type t = {
  domains : (string, Dict.t) Hashtbl.t;
  tables : (string, Table.t) Hashtbl.t;
}

let create () = { domains = Hashtbl.create 16; tables = Hashtbl.create 16 }

(** Get or create the domain dictionary named [name]. *)
let domain t name =
  match Hashtbl.find_opt t.domains name with
  | Some d -> d
  | None ->
    let d = Dict.create name in
    Hashtbl.add t.domains name d;
    d

(** Register a pre-built dictionary (e.g. an integer range for
    synthetic data). @raise Invalid_argument on duplicates. *)
let add_domain t d =
  if Hashtbl.mem t.domains (Dict.name d) then
    invalid_arg (Printf.sprintf "Database.add_domain: duplicate %s" (Dict.name d));
  Hashtbl.add t.domains (Dict.name d) d

(** Create an empty table.  [attrs] is a list of
    [(attribute_name, domain_name)]. *)
let create_table t ~name ~attrs =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Database.create_table: duplicate %s" name);
  let schema = Schema.make attrs in
  let dicts = Array.map (fun (a : Schema.attr) -> domain t a.domain) schema in
  let table = Table.create ~name ~schema ~dicts in
  Hashtbl.add t.tables name table;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tb -> tb
  | None -> invalid_arg (Printf.sprintf "Database.table: no table %s" name)

let table_opt t name = Hashtbl.find_opt t.tables name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare

let domain_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.domains [] |> List.sort compare
