(** Relation → ROBDD encoding (§2.2): the characteristic function over
    the attributes' finite-domain blocks under a chosen attribute
    ordering, with incremental maintenance. *)

type t = {
  mgr : Fcv_bdd.Manager.t;
  table : Table.t;
  order : int array;  (** order.(k) = schema position of the k-th shallowest attribute *)
  blocks : Fcv_bdd.Fd.block array;  (** indexed by schema position *)
  mutable root : int;
}

val alloc_blocks :
  Fcv_bdd.Manager.t -> Table.t -> order:int array -> Fcv_bdd.Fd.block array
(** One block per attribute, allocated in ordering sequence; result
    indexed by schema position.
    @raise Invalid_argument unless [order] is a permutation. *)

val minterm : Fcv_bdd.Manager.t -> Fcv_bdd.Fd.block array -> int array -> int
(** Minterm BDD of a coded row. *)

val build :
  Fcv_bdd.Manager.t -> Table.t -> order:int array -> blocks:Fcv_bdd.Fd.block array -> int
(** Fast path: rows packed into sorted integer codes, built top-down
    (falls back to a balanced OR-merge when codes exceed 62 bits or
    block levels are not increasing along the order). *)

val build_naive :
  Fcv_bdd.Manager.t -> Table.t -> order:int array -> blocks:Fcv_bdd.Fd.block array -> int
(** Reference builder: left fold of OR over row minterms.  Tests
    assert it agrees with {!build}; Fig. 4(a) contrasts their cost. *)

val encode : ?max_nodes:int -> Table.t -> order:int array -> t
(** Fresh manager + blocks + {!build} in one call. *)

val identity_order : Table.t -> int array

val size : t -> int
(** Reachable node count of the encoding. *)

val mem : t -> int array -> bool

val insert : t -> int array -> unit
(** OR one row's minterm in (§5.2 incremental maintenance).
    @raise Invalid_argument if a code exceeds the indexed domain. *)

val delete : t -> int array -> unit
