(* fcv — fast constraint violation checker.

   Subcommands:
     fcv check     load CSV tables, build logical indices, validate constraints
     fcv repair    plan a minimal tuple-deletion repair for the violated constraints
     fcv bench     time one validation batch at a given -j parallelism
     fcv index     build an index and report its size / ordering / build time
     fcv orderings compare the variable-ordering strategies on one table
     fcv sql       run a SQL query against the loaded tables
     fcv gen       emit synthetic datasets (customers / university / noise / k-PROD) as CSV

   Tables are loaded from a directory of CSV files (one table per file,
   first row = attribute names).  Columns with the same name share a
   domain, so same-named attributes join across tables. *)

module R = Fcv_relation
open Cmdliner

(* -- shared loading -------------------------------------------------------- *)

let load_dir dir =
  let db = R.Database.create () in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  let tables =
    List.filter_map
      (fun f ->
        if Filename.check_suffix f ".csv" then begin
          let name = Filename.chop_suffix f ".csv" in
          let path = Filename.concat dir f in
          (* same-named columns share a domain across tables *)
          let header, _ = R.Csv.read_file path in
          let domains = List.map (fun h -> (h, h)) header in
          Some (R.Csv.load_table db ~name ~path ~domains ())
        end
        else None)
      files
  in
  if tables = [] then failwith ("no .csv files in " ^ dir);
  (db, tables)

let strategy_of_string = function
  | "prob-converge" -> Core.Ordering.Prob_converge
  | "max-inf-gain" -> Core.Ordering.Max_inf_gain
  | "random" -> Core.Ordering.Random_order 1
  | "optimal" -> Core.Ordering.Optimal
  | s -> failwith ("unknown ordering strategy: " ^ s)

let data_arg =
  let doc = "Directory of CSV files, one table per file." in
  Arg.(required & opt (some dir) None & info [ "d"; "data" ] ~docv:"DIR" ~doc)

let strategy_arg =
  let doc = "Variable ordering: prob-converge | max-inf-gain | random | optimal." in
  Arg.(value & opt string "prob-converge" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let max_nodes_arg =
  let doc = "BDD node budget; past it the checker falls back to SQL (0 = unlimited)." in
  Arg.(value & opt int 1_000_000 & info [ "max-nodes" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel validation (1 = sequential).  Each worker checks \
     against a private replica of the logical indices, so verdicts are identical \
     to a sequential run."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let telemetry_arg =
  let doc =
    "Record telemetry (spans, counters, kernel stats) while running and write it \
     to $(docv) as JSON lines: one event object per line, then summary lines."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

(* Run [f] with telemetry enabled when [file] is given, writing the
   JSONL dump before returning or re-raising.  Callers must not call
   [exit] inside [f] — the dump would be skipped. *)
let with_telemetry file f =
  match file with
  | None -> f ()
  | Some path ->
    let module T = Fcv_util.Telemetry in
    T.reset ();
    T.enable ();
    let finish () =
      (try
         T.write_jsonl path;
         Printf.eprintf "(telemetry written to %s)\n" path
       with Sys_error msg -> Printf.eprintf "fcv: cannot write telemetry: %s\n" msg);
      T.disable ()
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

(* The shared BDD-kernel stats table ([fcv stats], and handy after any
   instrumented run). *)
let print_manager_stats oc mgr =
  let module M = Fcv_bdd.Manager in
  let s = M.stats mgr in
  Printf.fprintf oc "BDD manager\n";
  Printf.fprintf oc "  nodes                 %12d\n" s.M.nodes;
  Printf.fprintf oc "  peak nodes            %12d\n" s.M.peak_nodes;
  Printf.fprintf oc "  variables             %12d\n" s.M.variables;
  Printf.fprintf oc "  unique-table probes   %12d\n" (s.M.unique_hits + s.M.unique_misses);
  Printf.fprintf oc "    hits / misses       %12d / %d\n" s.M.unique_hits s.M.unique_misses;
  Printf.fprintf oc "    buckets (longest)   %12d (%d)\n" s.M.unique_buckets s.M.unique_max_bucket;
  Printf.fprintf oc "  apply-cache lookups   %12d\n" s.M.op_cache_lookups;
  Printf.fprintf oc "    hit rate            %12.1f%%\n" (100. *. M.cache_hit_rate s);
  Printf.fprintf oc "  op-cache entries      %12d\n" s.M.op_cache_entries;
  Printf.fprintf oc "    cap flushes         %12d\n" s.M.op_cache_flushes;
  Printf.fprintf oc "  budget trips          %12d\n" s.M.budget_trips;
  Printf.fprintf oc "  compact reclaimed     %12d\n" s.M.compact_reclaimed;
  let calls = List.filter (fun (_, n) -> n > 0) s.M.op_calls in
  if calls <> [] then
    Printf.fprintf oc "  op calls              %s\n"
      (String.concat ", " (List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n) calls))

(* The memory-lifecycle table: what a long-running store has allocated,
   what is actually live, and what reclamation has run. *)
let print_lifecycle_stats oc index =
  let ls = Core.Index.lifecycle_stats index in
  Printf.fprintf oc "Memory lifecycle\n";
  Printf.fprintf oc "  live nodes            %12d\n" ls.Core.Index.live;
  Printf.fprintf oc "  peak nodes            %12d\n" ls.Core.Index.peak;
  Printf.fprintf oc "  dead ratio            %12.1f%%\n" (100. *. ls.Core.Index.dead);
  Printf.fprintf oc "  levels used (live)    %12d (%d)\n" ls.Core.Index.levels_used
    ls.Core.Index.levels_alive;
  Printf.fprintf oc "  gc runs               %12d\n" ls.Core.Index.gc_runs;
  Printf.fprintf oc "  gc reclaimed          %12d\n" ls.Core.Index.gc_reclaimed;
  Printf.fprintf oc "  level recycles        %12d\n" ls.Core.Index.level_recycles;
  if ls.Core.Index.deferred_rebuilds > 0 then
    Printf.fprintf oc "  deferred rebuilds     %12d\n" ls.Core.Index.deferred_rebuilds

(* -- fcv check --------------------------------------------------------------- *)

let read_constraints path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines
      |> List.filter (fun l ->
             let l = String.trim l in
             l <> "" && not (String.length l >= 1 && l.[0] = '#'))
      |> List.map (fun l -> (l, Core.Fol_parser.spec_of_string l)))

(* the bare formulas of a parsed constraints file (index building,
   batch APIs that are hard-only by construction) *)
let formulas_of constraints =
  List.map (fun (_, sp) -> sp.Core.Formula.formula) constraints

let constraints_arg =
  let doc =
    "File of constraints, one per line, in the FOL syntax, e.g.\n\
     forall x . people(x, c) -> (exists s . cities(c, s)).\n\
     Lines starting with # are comments."
  in
  Arg.(required & opt (some file) None & info [ "c"; "constraints" ] ~docv:"FILE" ~doc)

(* Check every constraint against [index], printing one verdict line
   each (shared by [fcv check] and [fcv stats]); returns the number
   violated.  [jobs > 1] fans the checks out over worker domains
   holding index replicas; per-constraint errors are captured in the
   workers and reported in order, exactly like the sequential path.
   Witness enumeration always runs on the master index afterwards. *)
let run_checks ?(witnesses = 0) ?(jobs = 1) index constraints =
  let checked idx sp =
    match Core.Checker.check_spec idx sp with
    | r -> Ok r
    | exception (Core.Typing.Type_error msg | Core.Compile.Unsupported msg) -> Error msg
  in
  let results =
    if jobs <= 1 || List.length constraints <= 1 then
      List.map (fun (_, sp) -> checked index sp) constraints
    else begin
      let pool =
        Fcv_util.Pool.create ~name:"check" ~jobs:(min jobs (List.length constraints)) ()
      in
      let replica = Core.Replica.create index in
      Fun.protect
        ~finally:(fun () -> Fcv_util.Pool.shutdown pool)
        (fun () ->
          Core.Replica.prepare replica;
          Fcv_util.Pool.run_list pool
            (List.map (fun (_, sp) () -> checked (Core.Replica.get replica) sp) constraints))
    end
  in
  let violated = ref 0 in
  List.iter2
    (fun (src, sp) result ->
      let c = sp.Core.Formula.formula in
      match result with
      | Ok r ->
        let verdict =
          match r.Core.Checker.outcome with
          | Core.Checker.Satisfied -> "SATISFIED"
          | Core.Checker.Violated ->
            incr violated;
            "VIOLATED "
        in
        let rate =
          match r.Core.Checker.rate with
          | None -> ""
          | Some rt ->
            Printf.sprintf ", rate %.6g (allowed %.6g)" rt.Core.Checker.ratio
              (1. -. rt.Core.Checker.threshold)
        in
        Printf.printf "[%s] (%6.2f ms, %s%s) %s\n" verdict r.Core.Checker.elapsed_ms
          (Core.Checker.method_name r.Core.Checker.method_used)
          rate src;
        if witnesses > 0 && r.Core.Checker.outcome = Core.Checker.Violated then begin
          match Core.Violations.enumerate ~limit:witnesses index c with
          | Some ws ->
            List.iter
              (fun w ->
                print_endline
                  ("    "
                  ^ String.concat ", "
                      (List.map (fun (x, v) -> x ^ "=" ^ R.Value.to_string v) w)))
              ws
          | None -> print_endline "    (no finite witnesses)"
        end
      | Error msg -> Printf.printf "[ERROR    ] %s: %s\n" src msg)
    constraints results;
  !violated

let check_cmd =
  let witnesses_arg =
    let doc = "Print up to $(docv) violating bindings per violated constraint." in
    Arg.(value & opt int 0 & info [ "w"; "witnesses" ] ~docv:"K" ~doc)
  in
  let save_index_arg =
    let doc = "Persist the logical indices to $(docv) after building them." in
    Arg.(value & opt (some string) None & info [ "save-index" ] ~docv:"FILE" ~doc)
  in
  let load_index_arg =
    let doc = "Restore logical indices from $(docv) instead of re-encoding." in
    Arg.(value & opt (some string) None & info [ "load-index" ] ~docv:"FILE" ~doc)
  in
  let run data constraints_file strategy max_nodes witnesses save_index load_index jobs
      telemetry =
    let violated =
      with_telemetry telemetry @@ fun () ->
      let db, _ = load_dir data in
      let constraints = read_constraints constraints_file in
      let t0 = Fcv_util.Timer.now () in
      let index =
        Fcv_util.Telemetry.with_span "build_indices" @@ fun () ->
        match load_index with
        | Some path ->
          let index = Core.Index_io.load_file db path in
          Fcv_bdd.Manager.set_max_nodes (Core.Index.mgr index) max_nodes;
          (* any relation not covered by the snapshot still gets an index *)
          Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
            (formulas_of constraints);
          index
        | None ->
          let index = Core.Index.create ~max_nodes db in
          Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
            (formulas_of constraints);
          index
      in
      Option.iter (Core.Index_io.save_file index) save_index;
      Printf.printf "%s %d logical indices in %.1f ms\n\n"
        (if load_index = None then "built" else "loaded")
        (List.length (Core.Index.entries index))
        ((Fcv_util.Timer.now () -. t0) *. 1000.);
      let violated = run_checks ~witnesses ~jobs index constraints in
      Printf.printf "\n%d/%d constraints violated\n" violated (List.length constraints);
      violated
    in
    if violated > 0 then exit 1
  in
  let doc = "validate constraints against CSV tables using BDD logical indices" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg
      $ witnesses_arg $ save_index_arg $ load_index_arg $ jobs_arg $ telemetry_arg)

(* -- fcv repair ---------------------------------------------------------------- *)

let repair_cmd =
  let repair_strategy_arg =
    let doc = "Planner: exact (provably minimum; tractable FD classes only) | greedy \
               (general; blame-driven) | brute (tiny instances only)." in
    Arg.(value & opt string "greedy" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let max_deletions_arg =
    let doc = "Cap the deletion set at $(docv) tuples (the plan reports incomplete if \
               violations remain)." in
    Arg.(value & opt (some int) None & info [ "max-deletions" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the plan as one JSON object instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run data constraints_file strategy max_nodes max_deletions json telemetry =
    let plan =
      with_telemetry telemetry @@ fun () ->
      let db, _ = load_dir data in
      let constraints = read_constraints constraints_file in
      let strategy =
        match Fcv_repair.Repair.strategy_of_string strategy with
        | Ok s -> s
        | Error msg -> failwith msg
      in
      match
        Fcv_repair.Repair.plan_specs ~strategy ?max_deletions ~max_nodes db
          (List.map snd constraints)
      with
      | exception Fcv_repair.Repair.Not_tractable msg -> failwith msg
      | plan ->
        let module Rp = Fcv_repair.Repair in
        if json then print_endline (Fcv_util.Telemetry.Json.to_string (Rp.plan_json plan))
        else begin
          Printf.printf "repair plan (%s): %d deletions in %.1f ms\n"
            (Rp.strategy_name plan.Rp.strategy)
            (List.length plan.Rp.deletions)
            plan.Rp.elapsed_ms;
          Printf.printf "  constraints violated %d -> %d, witnesses %.0f -> %.0f%s\n"
            plan.Rp.violated_before plan.Rp.violated_after plan.Rp.witnesses_before
            plan.Rp.witnesses_after
            (if plan.Rp.complete then "" else "  (INCOMPLETE)");
          List.iter
            (fun d ->
              Printf.printf "  delete %s(%s)   blame %.0f\n" d.Rp.table
                (String.concat ", " d.Rp.cells)
                d.Rp.blame)
            plan.Rp.deletions
        end;
        plan
    in
    if not plan.Fcv_repair.Repair.complete then exit 1
  in
  let doc =
    "plan a minimal tuple-deletion repair restoring every constraint (read-only: \
     prints the plan, never touches the CSVs)"
  in
  Cmd.v
    (Cmd.info "repair" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ repair_strategy_arg $ max_nodes_arg
      $ max_deletions_arg $ json_arg $ telemetry_arg)

(* -- fcv index ----------------------------------------------------------------- *)

let index_cmd =
  let table_arg =
    let doc = "Table to index (default: every loaded table)." in
    Arg.(value & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)
  in
  let attrs_arg =
    let doc = "Comma-separated attribute subset to index (default: all)." in
    Arg.(value & opt (some string) None & info [ "a"; "attrs" ] ~docv:"A,B,C" ~doc)
  in
  let run data strategy table attrs =
    let db, tables = load_dir data in
    let names =
      match table with Some t -> [ t ] | None -> List.map R.Table.name tables
    in
    let attrs = Option.map (String.split_on_char ',') attrs in
    let index = Core.Index.create db in
    Printf.printf "%-16s %10s %12s %12s  %s\n" "table" "rows" "BDD nodes" "build ms" "ordering";
    List.iter
      (fun name ->
        let e = Core.Index.add index ~table_name:name ?attrs ~strategy:(strategy_of_string strategy) () in
        let t = R.Database.table db name in
        let schema = R.Table.schema t in
        let order_names =
          Array.to_list e.Core.Index.order
          |> List.map (fun k -> schema.(e.Core.Index.attrs.(k)).R.Schema.name)
        in
        Printf.printf "%-16s %10d %12d %12.1f  %s\n" name (R.Table.cardinality t)
          (Core.Index.entry_size index e)
          (e.Core.Index.build_time *. 1000.)
          (String.concat " < " order_names))
      names
  in
  let doc = "build logical indices and report size, build time and chosen ordering" in
  Cmd.v (Cmd.info "index" ~doc) Term.(const run $ data_arg $ strategy_arg $ table_arg $ attrs_arg)

(* -- fcv orderings ---------------------------------------------------------------- *)

let orderings_cmd =
  let table_arg =
    let doc = "Table whose orderings to compare." in
    Arg.(required & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)
  in
  let run data table =
    let db, _ = load_dir data in
    let t = R.Database.table db table in
    let schema = R.Table.schema t in
    let show order = String.concat " < " (Array.to_list order |> List.map (fun a -> schema.(a).R.Schema.name)) in
    let report label order =
      let size = Core.Ordering.bdd_size t order in
      Printf.printf "%-14s %10d nodes   %s\n" label size (show order)
    in
    report "MaxInf-Gain" (Core.Ordering.max_inf_gain t);
    report "Prob-Converge" (Core.Ordering.prob_converge t);
    report "random" (Core.Ordering.random_order (Fcv_util.Rng.create 1) t);
    if R.Table.arity t <= 6 then begin
      let order, size = Core.Ordering.optimal t in
      Printf.printf "%-14s %10d nodes   %s\n" "optimal" size (show order)
    end
    else print_endline "(arity > 6: skipping exhaustive optimal search)"
  in
  let doc = "compare variable-ordering heuristics on a table" in
  Cmd.v (Cmd.info "orderings" ~doc) Term.(const run $ data_arg $ table_arg)

(* -- fcv sql ------------------------------------------------------------------------ *)

let sql_cmd =
  let query_arg =
    let doc = "The SQL query to run." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let explain_arg =
    let doc = "Print the physical plan instead of executing." in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run data explain query =
    let db, tables = load_dir data in
    if explain then begin
      let q = Fcv_sql.Parser.query_of_string query in
      let plan, names = Fcv_sql.Planner.plan db q in
      Printf.printf "columns: %s\n%s\n" (String.concat "," names)
        (Fcv_sql.Algebra.to_string plan);
      ignore tables;
      exit 0
    end;
    let rows, names = Fcv_sql.Planner.run db query in
    print_endline (String.concat "," names);
    (* decode codes through any table that owns the dictionary; the
       planner names columns alias.attr so we re-derive dictionaries *)
    let dict_of_col i =
      (* best effort: find a table+attr whose qualified name matches *)
      let col = List.nth names i in
      let attr = match String.index_opt col '.' with
        | Some k -> String.sub col (k + 1) (String.length col - k - 1)
        | None -> col
      in
      List.find_map
        (fun t ->
          match R.Schema.position_opt (R.Table.schema t) attr with
          | Some p -> Some (R.Table.dict t p)
          | None -> None)
        tables
    in
    let dicts = List.mapi (fun i _ -> dict_of_col i) names in
    List.iter
      (fun row ->
        let cells =
          List.mapi
            (fun i d ->
              match d with
              | Some dict when row.(i) < R.Dict.size dict ->
                R.Value.to_string (R.Dict.value dict row.(i))
              | _ -> string_of_int row.(i))
            dicts
        in
        print_endline (String.concat "," cells))
      rows;
    Printf.eprintf "(%d rows)\n" (List.length rows)
  in
  let doc = "run a SQL query against the CSV tables" in
  Cmd.v (Cmd.info "sql" ~doc) Term.(const run $ data_arg $ explain_arg $ query_arg)

(* -- fcv deps -------------------------------------------------------------------------- *)

let deps_cmd =
  let table_arg =
    let doc = "Table to analyse." in
    Arg.(required & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)
  in
  let lhs_arg =
    let doc = "Comma-separated left-hand-side attributes." in
    Arg.(required & opt (some string) None & info [ "lhs" ] ~docv:"A,B" ~doc)
  in
  let rhs_arg =
    let doc = "Comma-separated right-hand-side attributes (FD) or middle set (MVD)." in
    Arg.(required & opt (some string) None & info [ "rhs" ] ~docv:"C,D" ~doc)
  in
  let mvd_arg =
    let doc = "Check the multivalued dependency lhs ->> rhs instead of the FD lhs -> rhs." in
    Arg.(value & flag & info [ "mvd" ] ~doc)
  in
  let run data table lhs rhs mvd =
    let db, _ = load_dir data in
    let split s = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "") in
    let lhs = split lhs and rhs = split rhs in
    let index = Core.Index.create db in
    ignore
      (Core.Index.add index ~table_name:table ~attrs:(lhs @ rhs)
         ~strategy:Core.Ordering.Prob_converge ());
    if mvd then begin
      let holds = Core.Fd_check.mvd_holds index ~table_name:table ~lhs ~mid:rhs in
      Printf.printf "%s: %s ->> %s %s\n" table (String.concat "," lhs)
        (String.concat "," rhs)
        (if holds then "HOLDS" else "is VIOLATED");
      if not holds then exit 1
    end
    else begin
      let holds = Core.Fd_check.fd_holds index ~table_name:table ~lhs ~rhs in
      Printf.printf "%s: %s -> %s %s\n" table (String.concat "," lhs)
        (String.concat "," rhs)
        (if holds then "HOLDS" else "is VIOLATED");
      if not holds then begin
        let bad = Core.Fd_check.violating_lhs ~limit:10 index ~table_name:table ~lhs ~rhs in
        List.iter
          (fun vs ->
            Printf.printf "  violating %s = %s\n" (String.concat "," lhs)
              (String.concat "," (List.map R.Value.to_string vs)))
          bad;
        exit 1
      end
    end
  in
  let doc = "check a functional or multivalued dependency on the logical index" in
  Cmd.v (Cmd.info "deps" ~doc) Term.(const run $ data_arg $ table_arg $ lhs_arg $ rhs_arg $ mvd_arg)

(* -- fcv stats ------------------------------------------------------------------------ *)

let stats_cmd =
  let run data constraints_file strategy max_nodes telemetry =
    let module T = Fcv_util.Telemetry in
    T.reset ();
    T.enable ();
    let db, _ = load_dir data in
    let constraints = read_constraints constraints_file in
    let index = Core.Index.create ~max_nodes db in
    T.with_span "build_indices" (fun () ->
        Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
          (formulas_of constraints));
    let violated = run_checks index constraints in
    Printf.printf "\n%d/%d constraints violated\n\n" violated (List.length constraints);
    print_manager_stats stdout (Core.Index.mgr index);
    print_newline ();
    print_lifecycle_stats stdout index;
    print_newline ();
    T.print_summary stdout;
    Option.iter
      (fun path ->
        T.write_jsonl path;
        Printf.eprintf "(telemetry written to %s)\n" path)
      telemetry;
    T.disable ()
  in
  let doc =
    "run the checks with telemetry on and print kernel statistics (apply-cache \
     hit rate, peak node count, per-stage spans, rewrite-rule firings)"
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg $ telemetry_arg)

(* -- fcv monitor ---------------------------------------------------------------------- *)

(* Updates file: one command per line (the {!Fcv_server.Protocol}
   update-stream syntax, shared with `fcv client updates`) —
     insert TABLE,v1,v2,...
     delete TABLE,v1,v2,...
     validate
   Values are matched against the tables' existing dictionaries; a row
   mentioning an unknown value is skipped with a warning (the offline
   monitor never grows domains — stream against a daemon for that). *)
let monitor_cmd =
  let updates_arg =
    let doc =
      "File of streamed updates: lines 'insert TABLE,v1,...', 'delete TABLE,v1,...' \
       or 'validate'.  Lines starting with # are comments."
    in
    Arg.(required & opt (some file) None & info [ "u"; "updates" ] ~docv:"FILE" ~doc)
  in
  let print_reports reports =
    List.iter
      (fun rep ->
        let rate =
          match rep.Core.Monitor.rate with
          | None -> ""
          | Some rt ->
            Printf.sprintf ", rate %.6g (allowed %.6g)" rt.Core.Checker.ratio
              (1. -. rt.Core.Checker.threshold)
        in
        Printf.printf "  [%s] (%s%6.2f ms%s) %s\n"
          (match rep.Core.Monitor.outcome with
          | Core.Checker.Satisfied -> "SATISFIED"
          | Core.Checker.Violated -> "VIOLATED ")
          (if rep.Core.Monitor.fresh then "fresh,  " else "cached, ")
          rep.Core.Monitor.elapsed_ms rate rep.Core.Monitor.constraint_.Core.Monitor.source)
      reports
  in
  let run data constraints_file strategy max_nodes updates_file telemetry =
    let any_violated =
      with_telemetry telemetry @@ fun () ->
      let db, _ = load_dir data in
      let constraints = read_constraints constraints_file in
      let index = Core.Index.create ~max_nodes db in
      Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
        (formulas_of constraints);
      let monitor = Core.Monitor.create index in
      List.iter (fun (src, _) -> ignore (Core.Monitor.add monitor src)) constraints;
      let any_violated = ref false in
      let validate label =
        Printf.printf "%s:\n" label;
        let reports = Core.Monitor.validate monitor in
        print_reports reports;
        if List.exists (fun r -> r.Core.Monitor.outcome = Core.Checker.Violated) reports
        then any_violated := true
      in
      let ic = open_in updates_file in
      let module P = Fcv_server.Protocol in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = ref 0 in
          let coded table cells =
            match P.code_row db ~table cells with
            | P.Coded row -> Some row
            | P.Unknown_value v ->
              Printf.eprintf "line %d: unknown value %s, row skipped\n" !n v;
              None
          in
          try
            while true do
              let line = input_line ic in
              incr n;
              match P.update_of_line line with
              | None -> ()
              | Some P.U_validate -> validate (Printf.sprintf "validate (line %d)" !n)
              | Some (P.U_insert (table, cells)) ->
                Option.iter (Core.Monitor.insert monitor ~table_name:table) (coded table cells)
              | Some (P.U_delete (table, cells)) ->
                Option.iter
                  (fun row -> ignore (Core.Monitor.delete monitor ~table_name:table row))
                  (coded table cells)
              | exception P.Malformed msg -> failwith (Printf.sprintf "line %d: %s" !n msg)
            done
          with End_of_file -> ());
      validate "final validation";
      !any_violated
    in
    if any_violated then exit 1
  in
  let doc =
    "replay a stream of inserts/deletes through the logical indices and lazily \
     re-validate the registered constraints"
  in
  Cmd.v
    (Cmd.info "monitor" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg $ updates_arg
      $ telemetry_arg)

(* -- fcv explain ---------------------------------------------------------------------- *)

let explain_cmd =
  let id_arg =
    let doc =
      "Explain only constraint $(docv) (1-based position in the constraints file); \
       default: every constraint."
    in
    Arg.(value & opt (some int) None & info [ "n"; "constraint" ] ~docv:"N" ~doc)
  in
  let warm_arg =
    let doc =
      "Run $(docv) warm validation passes first, so the tree shows measured \
       last-actual costs next to the estimates and the planner's learned history \
       (0 = pure estimates)."
    in
    Arg.(value & opt int 1 & info [ "warm" ] ~docv:"PASSES" ~doc)
  in
  let run data constraints_file strategy max_nodes id warm =
    let db, _ = load_dir data in
    let constraints = read_constraints constraints_file in
    let index = Core.Index.create ~max_nodes db in
    Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
      (formulas_of constraints);
    let monitor = Core.Monitor.create index in
    let regs = List.map (fun (src, _) -> Core.Monitor.add monitor src) constraints in
    for _ = 1 to warm do
      ignore (Core.Monitor.validate monitor)
    done;
    let chosen =
      match id with
      | None -> regs
      | Some n -> (
        match List.nth_opt regs (n - 1) with
        | Some r -> [ r ]
        | None ->
          failwith
            (Printf.sprintf "no constraint %d (file has %d)" n (List.length regs)))
    in
    List.iteri
      (fun i reg ->
        if i > 0 then print_newline ();
        match Core.Monitor.explain monitor reg.Core.Monitor.id with
        | Some (r, plan) ->
          print_string (Core.Planner.render plan);
          (* soft constraints: the threshold the verdict is taken
             against, and the last measured rate next to it *)
          if r.Core.Monitor.threshold < 1.0 then (
            match r.Core.Monitor.last_rate with
            | Some rt ->
              Printf.printf
                "  soft: threshold ≥ %g satisfied; measured rate %.6g (%s of %s \
                 bindings violated) -> %s\n"
                r.Core.Monitor.threshold rt.Core.Checker.ratio
                (Fcv_bdd.Nat.to_string rt.Core.Checker.violations)
                (Fcv_bdd.Nat.to_string rt.Core.Checker.total)
                (if
                   Core.Checker.clears ~threshold:rt.Core.Checker.threshold
                     ~violations:rt.Core.Checker.violations
                     ~total:rt.Core.Checker.total
                 then "satisfied"
                 else "violated")
            | None ->
              Printf.printf "  soft: threshold ≥ %g satisfied; rate not yet measured\n"
                r.Core.Monitor.threshold)
        | None -> Printf.printf "constraint %d: no plan\n" reg.Core.Monitor.id)
      chosen
  in
  let doc =
    "print the cost-based planner's costed plan tree per constraint (EXPLAIN \
     VERBOSE for constraints): estimated BDD-pipeline vs SQL cost, the chosen \
     strategy with its reason, and last measured actuals after warm passes"
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg $ id_arg
      $ warm_arg)

(* -- fcv serve ------------------------------------------------------------------------ *)

let sock_arg =
  let doc = "Socket to serve/reach the daemon on: a Unix path or host:port." in
  Arg.(required & opt (some string) None & info [ "sock" ] ~docv:"ADDR" ~doc)

let serve_cmd =
  let state_arg =
    let doc =
      "Durability directory (snapshot generations + write-ahead log).  On start the \
       daemon recovers from the latest snapshot plus the WAL; without $(docv) all \
       state is in-memory only."
    in
    Arg.(value & opt (some string) None & info [ "state" ] ~docv:"DIR" ~doc)
  in
  let constraints_opt_arg =
    let doc = "File of constraints to register at startup (one per line, FOL syntax)." in
    Arg.(value & opt (some file) None & info [ "c"; "constraints" ] ~docv:"FILE" ~doc)
  in
  let fsync_arg =
    let doc = "fsync the WAL every $(docv)-th record (1 = every record, 0 = never)." in
    Arg.(value & opt int 1 & info [ "fsync-every" ] ~docv:"N" ~doc)
  in
  let snapshot_every_arg =
    let doc = "Cut a snapshot automatically every $(docv) WAL records (0 = only on \
               'snapshot' requests and shutdown)." in
    Arg.(value & opt int 10_000 & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let idle_arg =
    let doc = "Close sessions silent for $(docv) seconds (0 = never)." in
    Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let shards_arg =
    let doc =
      "Partition constraints and tables across $(docv) serving shards, each with its \
       own monitor, WAL generation sequence and snapshot lineage.  A state directory \
       remembers its shard count; restarting with a different one is refused."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let group_commit_arg =
    let doc =
      "Group-commit window: release acknowledgements after at most $(docv) journaled \
       mutations share one fsync per dirty shard WAL (every processing round also \
       flushes, bounding latency)."
    in
    Arg.(value & opt int 8 & info [ "group-commit" ] ~docv:"N" ~doc)
  in
  let run data sock state constraints_file strategy max_nodes fsync_every snapshot_every
      idle_timeout jobs shards group_commit_window telemetry =
    with_telemetry telemetry @@ fun () ->
    let module S = Fcv_server.Server in
    let module Tier = Fcv_server.Tier in
    let strategy = strategy_of_string strategy in
    let load_base () = fst (load_dir data) in
    let tier, origin =
      match state with
      | Some dir ->
        let tier, rs = Tier.recover ~max_nodes ~shards ~fsync:(fsync_every > 0) ~state_dir:dir ~load_base () in
        let replayed = Array.fold_left (fun a r -> a + r.Fcv_server.Shard.replayed) 0 rs in
        let snaps =
          Array.fold_left (fun a r -> a + if r.Fcv_server.Shard.from_snapshot then 1 else 0) 0 rs
        in
        ( tier,
          Printf.sprintf "%d/%d shard snapshots + %d WAL records" snaps shards replayed )
      | None -> (Tier.create_fresh ~max_nodes ~shards ~load_base (), "base data (no durability)")
    in
    let config =
      {
        (S.default_config ~addr:sock) with
        S.state_dir = state;
        fsync_every;
        snapshot_every;
        idle_timeout;
        jobs;
        shards;
        group_commit_window;
      }
    in
    let server = S.of_tier config tier in
    (* Register startup constraints through the tier's durability path
       (WAL-logged under their pinned ids on their owning shard, so
       they stay stable across recoveries), skipping sources the
       recovered state already holds — or explicitly unregistered
       (tombstones): a restart must not resurrect those. *)
    Option.iter
      (fun path ->
        let known = List.map (fun r -> r.Core.Monitor.source) (Tier.constraints tier) in
        let unregistered =
          List.concat_map Fcv_server.Shard.unregistered (Array.to_list (Tier.shards tier))
        in
        List.iter
          (fun (src, spec) ->
            if (not (List.mem src known)) && not (List.mem src unregistered) then begin
              Array.iter
                (fun sh ->
                  Core.Checker.ensure_indices ~strategy
                    (Core.Monitor.index (Fcv_server.Shard.monitor sh))
                    [ spec.Core.Formula.formula ])
                (Tier.shards tier);
              ignore (S.register server src)
            end)
          (read_constraints path))
      constraints_file;
    let db = (Core.Monitor.index (S.monitor server)).Core.Index.db in
    Printf.printf
      "fcv serve: listening on %s — %d tables, %d constraints, %d shard%s, state from %s\n%!"
      sock
      (List.length (R.Database.table_names db))
      (List.length (Tier.constraints tier))
      shards
      (if shards = 1 then "" else "s")
      origin;
    S.run server;
    print_endline "fcv serve: stopped"
  in
  let doc =
    "run the constraint service: a daemon holding the logical indices resident, \
     validating registered constraints against streamed updates from concurrent \
     clients, with WAL-backed crash recovery (see docs/PROTOCOL.md)"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ data_arg $ sock_arg $ state_arg $ constraints_opt_arg $ strategy_arg
      $ max_nodes_arg $ fsync_arg $ snapshot_every_arg $ idle_arg $ jobs_arg $ shards_arg
      $ group_commit_arg $ telemetry_arg)

(* -- fcv client ----------------------------------------------------------------------- *)

let client_cmd =
  let cmd_arg =
    let doc =
      "One of: ping | stats | validate | repair | explain | compact | snapshot | \
       shutdown | register | unregister | insert | delete | updates."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CMD" ~doc)
  in
  let arg_arg =
    let doc =
      "The command's argument: a constraint (register), an id (unregister, \
       explain), 'TABLE,v1,...' (insert/delete), 'STRATEGY[,N][,apply]' (repair: \
       plan — and with 'apply', execute — up to N deletions), or an updates file \
       / '-' for stdin (updates)."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ARG" ~doc)
  in
  let run sock cmd arg =
    let module P = Fcv_server.Protocol in
    let module C = Fcv_server.Client in
    let module T = Fcv_util.Telemetry in
    let need what =
      match arg with
      | Some a -> a
      | None -> failwith (Printf.sprintf "client %s needs %s" cmd what)
    in
    let client = C.connect sock in
    Fun.protect ~finally:(fun () -> C.close client) @@ fun () ->
    let one req = print_endline (T.Json.to_string (C.ok_exn (C.request client req))) in
    let print_validation body =
      (match T.Json.member "reports" body with
      | Some (T.List reports) ->
        List.iter
          (fun rep ->
            let str f = match T.Json.member f rep with Some (T.String s) -> s | _ -> "?" in
            let fresh =
              match T.Json.member "fresh" rep with Some (T.Bool b) -> b | _ -> false
            in
            let ms = match T.Json.member "ms" rep with Some (T.Float f) -> f | _ -> 0. in
            let num f =
              match T.Json.member f rep with
              | Some (T.Float x) -> Some x
              | Some (T.Int i) -> Some (float_of_int i)
              | _ -> None
            in
            let rate =
              match (num "rate", num "threshold") with
              | Some r, Some p -> Printf.sprintf ", rate %.6g (allowed %.6g)" r (1. -. p)
              | _ -> ""
            in
            Printf.printf "  [%-9s] (%s%6.2f ms%s) %s\n"
              (String.uppercase_ascii (str "outcome"))
              (if fresh then "fresh,  " else "cached, ")
              ms rate (str "source"))
          reports
      | _ -> ());
      match T.Json.member "violated" body with Some (T.Int v) -> v | _ -> 0
    in
    match cmd with
    | "ping" -> one P.Ping
    | "stats" -> one P.Stats
    | "compact" -> one P.Compact
    | "snapshot" -> one P.Snapshot
    | "shutdown" -> one P.Shutdown
    | "register" -> one (P.Register { source = need "a constraint"; id = None })
    | "unregister" -> one (P.Unregister (int_of_string (need "a constraint id")))
    | "insert" | "delete" -> (
      match P.update_of_line (cmd ^ " " ^ need "TABLE,v1,...") with
      | Some u -> one (P.request_of_update u)
      | None -> failwith "empty row")
    | "validate" ->
      let body = C.ok_exn (C.request client P.Validate) in
      print_endline "validation:";
      if print_validation body > 0 then exit 1
    | "repair" ->
      let strategy, max_deletions, apply =
        match arg with
        | None -> ("greedy", None, false)
        | Some a -> (
          match List.map String.trim (String.split_on_char ',' a) with
          | [] -> ("greedy", None, false)
          | s :: rest ->
            ( (if s = "" then "greedy" else s),
              List.find_map int_of_string_opt rest,
              List.mem "apply" rest ))
      in
      one (P.Repair { strategy; max_deletions; apply })
    | "explain" -> (
      let c = int_of_string (need "a constraint id") in
      let body = C.ok_exn (C.request client (P.Explain c)) in
      match T.Json.member "text" body with
      | Some (T.String text) -> print_string text
      | _ -> print_endline (T.Json.to_string body))
    | "updates" ->
      let path = need "an updates file or '-'" in
      let ic = if path = "-" then stdin else open_in path in
      let violated = ref 0 in
      let updates, validations =
        Fun.protect
          ~finally:(fun () -> if path <> "-" then close_in ic)
          (fun () ->
            C.stream_updates client ic ~on_validate:(fun body ->
                print_endline "validation:";
                violated := !violated + print_validation body))
      in
      Printf.eprintf "(%d updates streamed, %d validations)\n" updates validations;
      if !violated > 0 then exit 1
    | c -> failwith ("unknown client command: " ^ c)
  in
  let doc = "talk to a running fcv serve daemon (line-delimited JSON protocol)" in
  Cmd.v (Cmd.info "client" ~doc) Term.(const run $ sock_arg $ cmd_arg $ arg_arg)

(* -- fcv bench ------------------------------------------------------------------------ *)

let bench_cmd =
  let repeat_arg =
    let doc = "Time the batch $(docv) times and report the best run." in
    Arg.(value & opt int 3 & info [ "r"; "repeat" ] ~docv:"R" ~doc)
  in
  let run data constraints_file strategy max_nodes jobs repeat =
    let db, _ = load_dir data in
    let constraints = read_constraints constraints_file in
    let formulas = formulas_of constraints in
    let index = Core.Index.create ~max_nodes db in
    Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index formulas;
    let time () =
      let t0 = Fcv_util.Timer.now () in
      let results = Core.Checker.check_all ~jobs index formulas in
      let ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
      let violated =
        List.length
          (List.filter (fun r -> r.Core.Checker.outcome = Core.Checker.Violated) results)
      in
      (ms, violated)
    in
    let runs = List.init (max 1 repeat) (fun _ -> time ()) in
    let times = List.map fst runs in
    let violated = snd (List.hd runs) in
    let best = List.fold_left min infinity times in
    let mean = List.fold_left ( +. ) 0. times /. float_of_int (List.length times) in
    Printf.printf
      "jobs=%d constraints=%d violated=%d runs=%d best_ms=%.2f mean_ms=%.2f\n" jobs
      (List.length formulas) violated (List.length runs) best mean
  in
  let doc =
    "time one parallel validation batch (all constraints, -j worker domains); \
     see bench/parallel.ml for the full j-scaling sweep"
  in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg $ jobs_arg
      $ repeat_arg)

(* -- fcv gen -------------------------------------------------------------------------- *)

let gen_cmd =
  let kind_arg =
    let doc = "Dataset: customers | university | noise | prod1 | prod4 | prod8 | random." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc)
  in
  let noise_arg =
    let doc =
      "Per-row FD corruption rate for the noise dataset (fraction of readings rows \
       with a wrong location/unit) — drive a soft constraint above or below its \
       threshold."
    in
    Arg.(value & opt float 0.001 & info [ "noise" ] ~docv:"RATE" ~doc)
  in
  let out_arg =
    let doc = "Output directory." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let rows_arg =
    let doc = "Number of rows." in
    Arg.(value & opt int 10_000 & info [ "n"; "rows" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "RNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run kind out rows seed noise =
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let rng = Fcv_util.Rng.create seed in
    let dump t = R.Csv.write_table t (Filename.concat out (R.Table.name t ^ ".csv")) in
    (match kind with
    | "noise" ->
      let cfg =
        { Fcv_datagen.Noise.default with rows; loc_noise = noise; unit_noise = noise }
      in
      let _, t = Fcv_datagen.Noise.generate rng cfg in
      dump t
    | "customers" ->
      let db = Fcv_datagen.Customers.make_db () in
      let t, world = Fcv_datagen.Customers.generate ~violation_rate:0.001 rng db ~name:"cust" ~rows in
      let cons = Fcv_datagen.Customers.constraints_table rng db world ~name:"allowed" ~n:(rows / 5) in
      dump t;
      dump cons
    | "university" ->
      let _, student, course, takes =
        Fcv_datagen.University.generate rng
          { Fcv_datagen.University.default with students = rows; violators = rows / 100 }
      in
      dump student;
      dump course;
      dump takes
    | "prod1" | "prod4" | "prod8" | "random" ->
      let family =
        match kind with
        | "prod1" -> Fcv_datagen.Synth.Prod 1
        | "prod4" -> Fcv_datagen.Synth.Prod 4
        | "prod8" -> Fcv_datagen.Synth.Prod 8
        | _ -> Fcv_datagen.Synth.Random
      in
      let _, t = Fcv_datagen.Synth.table rng ~name:kind ~attrs:5 ~dom:100 ~rows ~family in
      dump t
    | k -> failwith ("unknown dataset kind: " ^ k));
    Printf.printf "wrote %s dataset to %s\n" kind out
  in
  let doc = "generate synthetic datasets as CSV" in
  Cmd.v
    (Cmd.info "gen" ~doc)
    Term.(const run $ kind_arg $ out_arg $ rows_arg $ seed_arg $ noise_arg)

let sim_cmd =
  let seed_arg =
    let doc = "Master seed (sweep mode: schedule $(i,i) derives its own seed from it; \
               with $(b,--fault) it is the workload seed itself)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let schedules_arg =
    let doc = "Number of seeded workload schedules to sweep; every schedule is crashed \
               at every reachable fault point." in
    Arg.(value & opt int 50 & info [ "schedules" ] ~docv:"N" ~doc)
  in
  let ops_arg =
    let doc = "Override every workload's operation count (counterexample replay uses \
               this to pin the shrunk length)." in
    Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N" ~doc)
  in
  let fault_arg =
    let doc = "Replay mode: run only this fault point of the workload seeded by \
               $(b,--seed) (-1 = the fault-free clean-restart check)." in
    Arg.(value & opt (some int) None & info [ "fault" ] ~docv:"K" ~doc)
  in
  let inject_arg =
    let doc = "Plant a known durability bug (log-before-apply | skip-fsync | \
               skip-rotate | skip-shard-fsync) to demonstrate the harness catches it." in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"BUG" ~doc)
  in
  let shards_arg =
    let doc = "Force every workload onto an $(docv)-shard tier (otherwise each \
               schedule draws its own count, 1-3)." in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let failures_arg =
    let doc = "Stop after this many shrunk counterexamples." in
    Arg.(value & opt int 1 & info [ "max-failures" ] ~docv:"N" ~doc)
  in
  let run seed schedules ops fault inject shards max_failures =
    let inject =
      Option.map
        (fun s ->
          match Fcv_sim.Sim.inject_of_string s with Ok i -> i | Error msg -> failwith msg)
        inject
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Fcv_sim.Sim.run ?inject ?ops ?fault ?shards ~max_failures
        ~progress:(fun msg -> Printf.eprintf "fcv sim: %s\n%!" msg)
        ~seed ~schedules ()
    in
    Printf.printf "schedules %d  crash runs %d  failures %d  (%.1fs)\n" r.Fcv_sim.Sim.schedules_run
      r.Fcv_sim.Sim.crash_runs
      (List.length r.Fcv_sim.Sim.failures)
      (Unix.gettimeofday () -. t0);
    List.iter
      (fun cx ->
        Printf.printf "FAIL seed=%d ops=%d fault=%d: %s\n  repro: %s\n" cx.Fcv_sim.Sim.cx_seed
          cx.Fcv_sim.Sim.cx_ops cx.Fcv_sim.Sim.cx_fault cx.Fcv_sim.Sim.cx_reason
          cx.Fcv_sim.Sim.cx_repro)
      r.Fcv_sim.Sim.failures;
    if r.Fcv_sim.Sim.failures <> [] then exit 1
  in
  let doc =
    "deterministic fault-injection simulation of the constraint service's durability \
     (crash at every file-system effect point, recover, check invariants)"
  in
  Cmd.v
    (Cmd.info "sim" ~doc)
    Term.(
      const run $ seed_arg $ schedules_arg $ ops_arg $ fault_arg $ inject_arg $ shards_arg
      $ failures_arg)

let () =
  let doc = "fast identification of relational constraint violations (ICDE'07 reproduction)" in
  let info = Cmd.info "fcv" ~version:"1.0.0" ~doc in
  (* User-level errors (bad input files, unknown tables/kinds, ...) are
     raised as Failure/Sys_error from the subcommands; turn them into a
     clean message instead of cmdliner's "internal error" backtrace. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
          [
            check_cmd;
            explain_cmd;
            repair_cmd;
            bench_cmd;
            monitor_cmd;
            serve_cmd;
            client_cmd;
            sim_cmd;
            stats_cmd;
            index_cmd;
            orderings_cmd;
            sql_cmd;
            deps_cmd;
            gen_cmd;
          ])
     with
     | Failure msg | Sys_error msg | Invalid_argument msg ->
       Printf.eprintf "fcv: %s\n" msg;
       2
     | Unix.Unix_error (err, fn, arg) ->
       Printf.eprintf "fcv: %s %s: %s\n" fn arg (Unix.error_message err);
       2
     | Fcv_server.Protocol.Malformed msg ->
       Printf.eprintf "fcv: protocol error: %s\n" msg;
       2)
