(* fcv — fast constraint violation checker.

   Subcommands:
     fcv check     load CSV tables, build logical indices, validate constraints
     fcv index     build an index and report its size / ordering / build time
     fcv orderings compare the variable-ordering strategies on one table
     fcv sql       run a SQL query against the loaded tables
     fcv gen       emit synthetic datasets (customers / university / k-PROD) as CSV

   Tables are loaded from a directory of CSV files (one table per file,
   first row = attribute names).  Columns with the same name share a
   domain, so same-named attributes join across tables. *)

module R = Fcv_relation
open Cmdliner

(* -- shared loading -------------------------------------------------------- *)

let load_dir dir =
  let db = R.Database.create () in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  let tables =
    List.filter_map
      (fun f ->
        if Filename.check_suffix f ".csv" then begin
          let name = Filename.chop_suffix f ".csv" in
          let path = Filename.concat dir f in
          (* same-named columns share a domain across tables *)
          let header, _ = R.Csv.read_file path in
          let domains = List.map (fun h -> (h, h)) header in
          Some (R.Csv.load_table db ~name ~path ~domains ())
        end
        else None)
      files
  in
  if tables = [] then failwith ("no .csv files in " ^ dir);
  (db, tables)

let strategy_of_string = function
  | "prob-converge" -> Core.Ordering.Prob_converge
  | "max-inf-gain" -> Core.Ordering.Max_inf_gain
  | "random" -> Core.Ordering.Random_order 1
  | "optimal" -> Core.Ordering.Optimal
  | s -> failwith ("unknown ordering strategy: " ^ s)

let data_arg =
  let doc = "Directory of CSV files, one table per file." in
  Arg.(required & opt (some dir) None & info [ "d"; "data" ] ~docv:"DIR" ~doc)

let strategy_arg =
  let doc = "Variable ordering: prob-converge | max-inf-gain | random | optimal." in
  Arg.(value & opt string "prob-converge" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let max_nodes_arg =
  let doc = "BDD node budget; past it the checker falls back to SQL (0 = unlimited)." in
  Arg.(value & opt int 1_000_000 & info [ "max-nodes" ] ~docv:"N" ~doc)

let telemetry_arg =
  let doc =
    "Record telemetry (spans, counters, kernel stats) while running and write it \
     to $(docv) as JSON lines: one event object per line, then summary lines."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

(* Run [f] with telemetry enabled when [file] is given, writing the
   JSONL dump before returning or re-raising.  Callers must not call
   [exit] inside [f] — the dump would be skipped. *)
let with_telemetry file f =
  match file with
  | None -> f ()
  | Some path ->
    let module T = Fcv_util.Telemetry in
    T.reset ();
    T.enable ();
    let finish () =
      (try
         T.write_jsonl path;
         Printf.eprintf "(telemetry written to %s)\n" path
       with Sys_error msg -> Printf.eprintf "fcv: cannot write telemetry: %s\n" msg);
      T.disable ()
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

(* The shared BDD-kernel stats table ([fcv stats], and handy after any
   instrumented run). *)
let print_manager_stats oc mgr =
  let module M = Fcv_bdd.Manager in
  let s = M.stats mgr in
  Printf.fprintf oc "BDD manager\n";
  Printf.fprintf oc "  nodes                 %12d\n" s.M.nodes;
  Printf.fprintf oc "  peak nodes            %12d\n" s.M.peak_nodes;
  Printf.fprintf oc "  variables             %12d\n" s.M.variables;
  Printf.fprintf oc "  unique-table probes   %12d\n" (s.M.unique_hits + s.M.unique_misses);
  Printf.fprintf oc "    hits / misses       %12d / %d\n" s.M.unique_hits s.M.unique_misses;
  Printf.fprintf oc "    buckets (longest)   %12d (%d)\n" s.M.unique_buckets s.M.unique_max_bucket;
  Printf.fprintf oc "  apply-cache lookups   %12d\n" s.M.op_cache_lookups;
  Printf.fprintf oc "    hit rate            %12.1f%%\n" (100. *. M.cache_hit_rate s);
  Printf.fprintf oc "  budget trips          %12d\n" s.M.budget_trips;
  Printf.fprintf oc "  compact reclaimed     %12d\n" s.M.compact_reclaimed;
  let calls = List.filter (fun (_, n) -> n > 0) s.M.op_calls in
  if calls <> [] then
    Printf.fprintf oc "  op calls              %s\n"
      (String.concat ", " (List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n) calls))

(* -- fcv check --------------------------------------------------------------- *)

let read_constraints path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines
      |> List.filter (fun l ->
             let l = String.trim l in
             l <> "" && not (String.length l >= 1 && l.[0] = '#'))
      |> List.map (fun l -> (l, Core.Fol_parser.of_string l)))

let constraints_arg =
  let doc =
    "File of constraints, one per line, in the FOL syntax, e.g.\n\
     forall x . people(x, c) -> (exists s . cities(c, s)).\n\
     Lines starting with # are comments."
  in
  Arg.(required & opt (some file) None & info [ "c"; "constraints" ] ~docv:"FILE" ~doc)

(* Check every constraint against [index], printing one verdict line
   each (shared by [fcv check] and [fcv stats]); returns the number
   violated. *)
let run_checks ?(witnesses = 0) index constraints =
  let violated = ref 0 in
  List.iter
    (fun (src, c) ->
      match Core.Checker.check index c with
      | r ->
        let verdict =
          match r.Core.Checker.outcome with
          | Core.Checker.Satisfied -> "SATISFIED"
          | Core.Checker.Violated ->
            incr violated;
            "VIOLATED "
        in
        Printf.printf "[%s] (%6.2f ms, %s) %s\n" verdict r.Core.Checker.elapsed_ms
          (Core.Checker.method_name r.Core.Checker.method_used)
          src;
        if witnesses > 0 && r.Core.Checker.outcome = Core.Checker.Violated then begin
          match Core.Violations.enumerate ~limit:witnesses index c with
          | Some ws ->
            List.iter
              (fun w ->
                print_endline
                  ("    "
                  ^ String.concat ", "
                      (List.map (fun (x, v) -> x ^ "=" ^ R.Value.to_string v) w)))
              ws
          | None -> print_endline "    (no finite witnesses)"
        end
      | exception (Core.Typing.Type_error msg | Core.Compile.Unsupported msg) ->
        Printf.printf "[ERROR    ] %s: %s\n" src msg)
    constraints;
  !violated

let check_cmd =
  let witnesses_arg =
    let doc = "Print up to $(docv) violating bindings per violated constraint." in
    Arg.(value & opt int 0 & info [ "w"; "witnesses" ] ~docv:"K" ~doc)
  in
  let save_index_arg =
    let doc = "Persist the logical indices to $(docv) after building them." in
    Arg.(value & opt (some string) None & info [ "save-index" ] ~docv:"FILE" ~doc)
  in
  let load_index_arg =
    let doc = "Restore logical indices from $(docv) instead of re-encoding." in
    Arg.(value & opt (some string) None & info [ "load-index" ] ~docv:"FILE" ~doc)
  in
  let run data constraints_file strategy max_nodes witnesses save_index load_index telemetry =
    let violated =
      with_telemetry telemetry @@ fun () ->
      let db, _ = load_dir data in
      let constraints = read_constraints constraints_file in
      let t0 = Fcv_util.Timer.now () in
      let index =
        Fcv_util.Telemetry.with_span "build_indices" @@ fun () ->
        match load_index with
        | Some path ->
          let index = Core.Index_io.load_file db path in
          Fcv_bdd.Manager.set_max_nodes (Core.Index.mgr index) max_nodes;
          (* any relation not covered by the snapshot still gets an index *)
          Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
            (List.map snd constraints);
          index
        | None ->
          let index = Core.Index.create ~max_nodes db in
          Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
            (List.map snd constraints);
          index
      in
      Option.iter (Core.Index_io.save_file index) save_index;
      Printf.printf "%s %d logical indices in %.1f ms\n\n"
        (if load_index = None then "built" else "loaded")
        (List.length (Core.Index.entries index))
        ((Fcv_util.Timer.now () -. t0) *. 1000.);
      let violated = run_checks ~witnesses index constraints in
      Printf.printf "\n%d/%d constraints violated\n" violated (List.length constraints);
      violated
    in
    if violated > 0 then exit 1
  in
  let doc = "validate constraints against CSV tables using BDD logical indices" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg
      $ witnesses_arg $ save_index_arg $ load_index_arg $ telemetry_arg)

(* -- fcv index ----------------------------------------------------------------- *)

let index_cmd =
  let table_arg =
    let doc = "Table to index (default: every loaded table)." in
    Arg.(value & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)
  in
  let attrs_arg =
    let doc = "Comma-separated attribute subset to index (default: all)." in
    Arg.(value & opt (some string) None & info [ "a"; "attrs" ] ~docv:"A,B,C" ~doc)
  in
  let run data strategy table attrs =
    let db, tables = load_dir data in
    let names =
      match table with Some t -> [ t ] | None -> List.map R.Table.name tables
    in
    let attrs = Option.map (String.split_on_char ',') attrs in
    let index = Core.Index.create db in
    Printf.printf "%-16s %10s %12s %12s  %s\n" "table" "rows" "BDD nodes" "build ms" "ordering";
    List.iter
      (fun name ->
        let e = Core.Index.add index ~table_name:name ?attrs ~strategy:(strategy_of_string strategy) () in
        let t = R.Database.table db name in
        let schema = R.Table.schema t in
        let order_names =
          Array.to_list e.Core.Index.order
          |> List.map (fun k -> schema.(e.Core.Index.attrs.(k)).R.Schema.name)
        in
        Printf.printf "%-16s %10d %12d %12.1f  %s\n" name (R.Table.cardinality t)
          (Core.Index.entry_size index e)
          (e.Core.Index.build_time *. 1000.)
          (String.concat " < " order_names))
      names
  in
  let doc = "build logical indices and report size, build time and chosen ordering" in
  Cmd.v (Cmd.info "index" ~doc) Term.(const run $ data_arg $ strategy_arg $ table_arg $ attrs_arg)

(* -- fcv orderings ---------------------------------------------------------------- *)

let orderings_cmd =
  let table_arg =
    let doc = "Table whose orderings to compare." in
    Arg.(required & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)
  in
  let run data table =
    let db, _ = load_dir data in
    let t = R.Database.table db table in
    let schema = R.Table.schema t in
    let show order = String.concat " < " (Array.to_list order |> List.map (fun a -> schema.(a).R.Schema.name)) in
    let report label order =
      let size = Core.Ordering.bdd_size t order in
      Printf.printf "%-14s %10d nodes   %s\n" label size (show order)
    in
    report "MaxInf-Gain" (Core.Ordering.max_inf_gain t);
    report "Prob-Converge" (Core.Ordering.prob_converge t);
    report "random" (Core.Ordering.random_order (Fcv_util.Rng.create 1) t);
    if R.Table.arity t <= 6 then begin
      let order, size = Core.Ordering.optimal t in
      Printf.printf "%-14s %10d nodes   %s\n" "optimal" size (show order)
    end
    else print_endline "(arity > 6: skipping exhaustive optimal search)"
  in
  let doc = "compare variable-ordering heuristics on a table" in
  Cmd.v (Cmd.info "orderings" ~doc) Term.(const run $ data_arg $ table_arg)

(* -- fcv sql ------------------------------------------------------------------------ *)

let sql_cmd =
  let query_arg =
    let doc = "The SQL query to run." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let explain_arg =
    let doc = "Print the physical plan instead of executing." in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run data explain query =
    let db, tables = load_dir data in
    if explain then begin
      let q = Fcv_sql.Parser.query_of_string query in
      let plan, names = Fcv_sql.Planner.plan db q in
      Printf.printf "columns: %s\n%s\n" (String.concat "," names)
        (Fcv_sql.Algebra.to_string plan);
      ignore tables;
      exit 0
    end;
    let rows, names = Fcv_sql.Planner.run db query in
    print_endline (String.concat "," names);
    (* decode codes through any table that owns the dictionary; the
       planner names columns alias.attr so we re-derive dictionaries *)
    let dict_of_col i =
      (* best effort: find a table+attr whose qualified name matches *)
      let col = List.nth names i in
      let attr = match String.index_opt col '.' with
        | Some k -> String.sub col (k + 1) (String.length col - k - 1)
        | None -> col
      in
      List.find_map
        (fun t ->
          match R.Schema.position_opt (R.Table.schema t) attr with
          | Some p -> Some (R.Table.dict t p)
          | None -> None)
        tables
    in
    let dicts = List.mapi (fun i _ -> dict_of_col i) names in
    List.iter
      (fun row ->
        let cells =
          List.mapi
            (fun i d ->
              match d with
              | Some dict when row.(i) < R.Dict.size dict ->
                R.Value.to_string (R.Dict.value dict row.(i))
              | _ -> string_of_int row.(i))
            dicts
        in
        print_endline (String.concat "," cells))
      rows;
    Printf.eprintf "(%d rows)\n" (List.length rows)
  in
  let doc = "run a SQL query against the CSV tables" in
  Cmd.v (Cmd.info "sql" ~doc) Term.(const run $ data_arg $ explain_arg $ query_arg)

(* -- fcv deps -------------------------------------------------------------------------- *)

let deps_cmd =
  let table_arg =
    let doc = "Table to analyse." in
    Arg.(required & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)
  in
  let lhs_arg =
    let doc = "Comma-separated left-hand-side attributes." in
    Arg.(required & opt (some string) None & info [ "lhs" ] ~docv:"A,B" ~doc)
  in
  let rhs_arg =
    let doc = "Comma-separated right-hand-side attributes (FD) or middle set (MVD)." in
    Arg.(required & opt (some string) None & info [ "rhs" ] ~docv:"C,D" ~doc)
  in
  let mvd_arg =
    let doc = "Check the multivalued dependency lhs ->> rhs instead of the FD lhs -> rhs." in
    Arg.(value & flag & info [ "mvd" ] ~doc)
  in
  let run data table lhs rhs mvd =
    let db, _ = load_dir data in
    let split s = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "") in
    let lhs = split lhs and rhs = split rhs in
    let index = Core.Index.create db in
    ignore
      (Core.Index.add index ~table_name:table ~attrs:(lhs @ rhs)
         ~strategy:Core.Ordering.Prob_converge ());
    if mvd then begin
      let holds = Core.Fd_check.mvd_holds index ~table_name:table ~lhs ~mid:rhs in
      Printf.printf "%s: %s ->> %s %s\n" table (String.concat "," lhs)
        (String.concat "," rhs)
        (if holds then "HOLDS" else "is VIOLATED");
      if not holds then exit 1
    end
    else begin
      let holds = Core.Fd_check.fd_holds index ~table_name:table ~lhs ~rhs in
      Printf.printf "%s: %s -> %s %s\n" table (String.concat "," lhs)
        (String.concat "," rhs)
        (if holds then "HOLDS" else "is VIOLATED");
      if not holds then begin
        let bad = Core.Fd_check.violating_lhs ~limit:10 index ~table_name:table ~lhs ~rhs in
        List.iter
          (fun vs ->
            Printf.printf "  violating %s = %s\n" (String.concat "," lhs)
              (String.concat "," (List.map R.Value.to_string vs)))
          bad;
        exit 1
      end
    end
  in
  let doc = "check a functional or multivalued dependency on the logical index" in
  Cmd.v (Cmd.info "deps" ~doc) Term.(const run $ data_arg $ table_arg $ lhs_arg $ rhs_arg $ mvd_arg)

(* -- fcv stats ------------------------------------------------------------------------ *)

let stats_cmd =
  let run data constraints_file strategy max_nodes telemetry =
    let module T = Fcv_util.Telemetry in
    T.reset ();
    T.enable ();
    let db, _ = load_dir data in
    let constraints = read_constraints constraints_file in
    let index = Core.Index.create ~max_nodes db in
    T.with_span "build_indices" (fun () ->
        Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
          (List.map snd constraints));
    let violated = run_checks index constraints in
    Printf.printf "\n%d/%d constraints violated\n\n" violated (List.length constraints);
    print_manager_stats stdout (Core.Index.mgr index);
    print_newline ();
    T.print_summary stdout;
    Option.iter
      (fun path ->
        T.write_jsonl path;
        Printf.eprintf "(telemetry written to %s)\n" path)
      telemetry;
    T.disable ()
  in
  let doc =
    "run the checks with telemetry on and print kernel statistics (apply-cache \
     hit rate, peak node count, per-stage spans, rewrite-rule firings)"
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg $ telemetry_arg)

(* -- fcv monitor ---------------------------------------------------------------------- *)

(* Updates file: one command per line —
     insert TABLE,v1,v2,...
     delete TABLE,v1,v2,...
     validate
   Values are matched against the tables' existing dictionaries; a row
   mentioning an unknown value is skipped with a warning (streaming
   brand-new domain values would force an index rebuild). *)
let monitor_cmd =
  let updates_arg =
    let doc =
      "File of streamed updates: lines 'insert TABLE,v1,...', 'delete TABLE,v1,...' \
       or 'validate'.  Lines starting with # are comments."
    in
    Arg.(required & opt (some file) None & info [ "u"; "updates" ] ~docv:"FILE" ~doc)
  in
  let parse_row db line =
    match String.split_on_char ',' line |> List.map String.trim with
    | table_name :: cells when cells <> [] -> (
      let t = R.Database.table db table_name in
      if List.length cells <> R.Table.arity t then
        failwith
          (Printf.sprintf "%s: expected %d values, got %d" table_name (R.Table.arity t)
             (List.length cells));
      let coded =
        List.mapi
          (fun j cell ->
            R.Dict.code (R.Table.dict t j) (R.Value.of_string cell))
          cells
      in
      if List.exists (( = ) None) coded then None
      else Some (table_name, Array.of_list (List.map Option.get coded)))
    | _ -> failwith ("malformed update row: " ^ line)
  in
  let print_reports reports =
    List.iter
      (fun rep ->
        Printf.printf "  [%s] (%s%6.2f ms) %s\n"
          (match rep.Core.Monitor.outcome with
          | Core.Checker.Satisfied -> "SATISFIED"
          | Core.Checker.Violated -> "VIOLATED ")
          (if rep.Core.Monitor.fresh then "fresh,  " else "cached, ")
          rep.Core.Monitor.elapsed_ms rep.Core.Monitor.constraint_.Core.Monitor.source)
      reports
  in
  let run data constraints_file strategy max_nodes updates_file telemetry =
    let any_violated =
      with_telemetry telemetry @@ fun () ->
      let db, _ = load_dir data in
      let constraints = read_constraints constraints_file in
      let index = Core.Index.create ~max_nodes db in
      Core.Checker.ensure_indices ~strategy:(strategy_of_string strategy) index
        (List.map snd constraints);
      let monitor = Core.Monitor.create index in
      List.iter (fun (src, _) -> ignore (Core.Monitor.add monitor src)) constraints;
      let any_violated = ref false in
      let validate label =
        Printf.printf "%s:\n" label;
        let reports = Core.Monitor.validate monitor in
        print_reports reports;
        if List.exists (fun r -> r.Core.Monitor.outcome = Core.Checker.Violated) reports
        then any_violated := true
      in
      let ic = open_in updates_file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = ref 0 in
          try
            while true do
              let line = String.trim (input_line ic) in
              incr n;
              if line <> "" && line.[0] <> '#' then begin
                match String.index_opt line ' ' with
                | _ when line = "validate" -> validate (Printf.sprintf "validate (line %d)" !n)
                | Some k -> (
                  let cmd = String.sub line 0 k in
                  let rest = String.sub line (k + 1) (String.length line - k - 1) in
                  match (cmd, parse_row db rest) with
                  | "insert", Some (table_name, row) -> Core.Monitor.insert monitor ~table_name row
                  | "delete", Some (table_name, row) ->
                    ignore (Core.Monitor.delete monitor ~table_name row)
                  | ("insert" | "delete"), None ->
                    Printf.eprintf "line %d: unknown value, row skipped: %s\n" !n rest
                  | _ -> failwith (Printf.sprintf "line %d: unknown command %s" !n cmd))
                | None -> failwith (Printf.sprintf "line %d: malformed line: %s" !n line)
              end
            done
          with End_of_file -> ());
      validate "final validation";
      !any_violated
    in
    if any_violated then exit 1
  in
  let doc =
    "replay a stream of inserts/deletes through the logical indices and lazily \
     re-validate the registered constraints"
  in
  Cmd.v
    (Cmd.info "monitor" ~doc)
    Term.(
      const run $ data_arg $ constraints_arg $ strategy_arg $ max_nodes_arg $ updates_arg
      $ telemetry_arg)

(* -- fcv gen -------------------------------------------------------------------------- *)

let gen_cmd =
  let kind_arg =
    let doc = "Dataset: customers | university | prod1 | prod4 | prod8 | random." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc)
  in
  let out_arg =
    let doc = "Output directory." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let rows_arg =
    let doc = "Number of rows." in
    Arg.(value & opt int 10_000 & info [ "n"; "rows" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "RNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run kind out rows seed =
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let rng = Fcv_util.Rng.create seed in
    let dump t = R.Csv.write_table t (Filename.concat out (R.Table.name t ^ ".csv")) in
    (match kind with
    | "customers" ->
      let db = Fcv_datagen.Customers.make_db () in
      let t, world = Fcv_datagen.Customers.generate ~violation_rate:0.001 rng db ~name:"cust" ~rows in
      let cons = Fcv_datagen.Customers.constraints_table rng db world ~name:"allowed" ~n:(rows / 5) in
      dump t;
      dump cons
    | "university" ->
      let _, student, course, takes =
        Fcv_datagen.University.generate rng
          { Fcv_datagen.University.default with students = rows; violators = rows / 100 }
      in
      dump student;
      dump course;
      dump takes
    | "prod1" | "prod4" | "prod8" | "random" ->
      let family =
        match kind with
        | "prod1" -> Fcv_datagen.Synth.Prod 1
        | "prod4" -> Fcv_datagen.Synth.Prod 4
        | "prod8" -> Fcv_datagen.Synth.Prod 8
        | _ -> Fcv_datagen.Synth.Random
      in
      let _, t = Fcv_datagen.Synth.table rng ~name:kind ~attrs:5 ~dom:100 ~rows ~family in
      dump t
    | k -> failwith ("unknown dataset kind: " ^ k));
    Printf.printf "wrote %s dataset to %s\n" kind out
  in
  let doc = "generate synthetic datasets as CSV" in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ kind_arg $ out_arg $ rows_arg $ seed_arg)

let () =
  let doc = "fast identification of relational constraint violations (ICDE'07 reproduction)" in
  let info = Cmd.info "fcv" ~version:"1.0.0" ~doc in
  (* User-level errors (bad input files, unknown tables/kinds, ...) are
     raised as Failure/Sys_error from the subcommands; turn them into a
     clean message instead of cmdliner's "internal error" backtrace. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
          [
            check_cmd;
            monitor_cmd;
            stats_cmd;
            index_cmd;
            orderings_cmd;
            sql_cmd;
            deps_cmd;
            gen_cmd;
          ])
     with
     | Failure msg | Sys_error msg | Invalid_argument msg ->
       Printf.eprintf "fcv: %s\n" msg;
       2)
