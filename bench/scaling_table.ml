(* Render BENCH_parallel.json as a GitHub-flavoured markdown j-scaling
   table — bench/ci.sh appends it to $GITHUB_STEP_SUMMARY so the
   speedup curve is readable from the Actions run page without
   downloading artifacts.

     dune exec bench/scaling_table.exe [-- BENCH_parallel.json] *)

module J = Fcv_util.Telemetry.Json

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  J.of_string s

let mem name j =
  match J.member name j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing field %S" name)

let int_f name j =
  match mem name j with
  | Fcv_util.Telemetry.Int i -> i
  | _ -> failwith (Printf.sprintf "field %S is not an int" name)

let float_f name j =
  match mem name j with
  | Fcv_util.Telemetry.Float f -> f
  | Fcv_util.Telemetry.Int i -> float_of_int i
  | _ -> failwith (Printf.sprintf "field %S is not a number" name)

let str_f name j =
  match mem name j with
  | Fcv_util.Telemetry.String s -> s
  | _ -> failwith (Printf.sprintf "field %S is not a string" name)

let list_f name j =
  match mem name j with
  | Fcv_util.Telemetry.List l -> l
  | _ -> failwith (Printf.sprintf "field %S is not a list" name)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_parallel.json" in
  let doc = read_json path in
  let env = mem "env" doc in
  Printf.printf "### Parallel validation j-scaling (%d cores, OCaml %s)\n\n"
    (int_f "cores" env) (str_f "ocaml" env);
  Printf.printf "| workload | j | best ms | mean ms | speedup | hydrations (full / delta / ops) |\n";
  Printf.printf "|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun w ->
      let name = str_f "name" w in
      List.iter
        (fun p ->
          let hyd =
            match J.member "hydration" p with
            | Some h ->
              Printf.sprintf "%d / %d / %d" (int_f "full" h) (int_f "delta" h)
                (int_f "delta_ops" h)
            | None -> "—"
          in
          Printf.printf "| %s | %d | %.2f | %.2f | %.2fx | %s |\n" name (int_f "jobs" p)
            (float_f "best_ms" p) (float_f "mean_ms" p) (float_f "speedup" p) hyd)
        (list_f "series" w);
      Printf.printf "| %s | | | | | %d violated of %d constraints |\n" name
        (int_f "violated" w) (int_f "constraints" w))
    (list_f "workloads" doc)
