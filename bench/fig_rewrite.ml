(** Experiments E12–E14 (Fig. 6): the query-rewrite micro-benchmarks.

    E12 — equi-join: naive (equality-BDD conjunction) vs optimised
    (variable renaming), 1 and 2 join attributes, varying |BDD(R1)|
    at fixed |BDD(R2)|.
    E13 — ∃x φ₁ ∨ ∃x φ₂ versus ∃x (φ₁ ∨ φ₂) via the fused appex.
    E14 — ∀x φ₁ ∧ ∀x φ₂ (push-down) versus ∀x (φ₁ ∧ φ₂) via appall. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
open Bench_util

(* A pair of random relations over shared domains, encoded in one
   manager: R1(a, b, c) and R2(a', b', d).  [rows1] controls |BDD(R1)|. *)
let make_pair ~rows1 ~rows2 =
  let rng = Fcv_util.Rng.create (rows1 + (7 * rows2)) in
  let db = R.Database.create () in
  List.iter
    (fun (n, s) -> R.Database.add_domain db (R.Dict.of_int_range n s))
    [ ("da", 100); ("db", 100); ("dc", 100); ("dd", 100) ];
  let t1 =
    R.Database.create_table db ~name:"r1" ~attrs:[ ("a", "da"); ("b", "db"); ("c", "dc") ]
  in
  let t2 =
    R.Database.create_table db ~name:"r2" ~attrs:[ ("a", "da"); ("b", "db"); ("d", "dd") ]
  in
  for _ = 1 to rows1 do
    R.Table.insert_coded t1
      [| Fcv_util.Rng.int rng 100; Fcv_util.Rng.int rng 100; Fcv_util.Rng.int rng 100 |]
  done;
  for _ = 1 to rows2 do
    R.Table.insert_coded t2
      [| Fcv_util.Rng.int rng 100; Fcv_util.Rng.int rng 100; Fcv_util.Rng.int rng 100 |]
  done;
  let mgr = M.create ~nvars:0 () in
  let order = [| 0; 1; 2 |] in
  let blocks1 = R.Encode.alloc_blocks mgr t1 ~order in
  let root1 = R.Encode.build mgr t1 ~order ~blocks:blocks1 in
  let blocks2 = R.Encode.alloc_blocks mgr t2 ~order in
  let root2 = R.Encode.build mgr t2 ~order ~blocks:blocks2 in
  (mgr, blocks1, root1, blocks2, root2)

let join_sizes = match scale with Quick -> [ 5_000; 10_000; 20_000; 40_000 ] | Full -> [ 25_000; 50_000; 100_000; 200_000; 400_000 ]
let fixed_rows2 = match scale with Quick -> 20_000 | Full -> 100_000

let fig6a () =
  section "Fig 6(a): equi-join rewrite — naive equality-BDD vs rename (ms)";
  row "%-10s %12s %14s %14s %14s %14s %8s %12s\n" "R1 rows" "R1 nodes" "naive 1attr"
    "opt 1attr" "naive 2attr" "opt 2attr" "hit%" "peak nodes";
  List.iter
    (fun rows1 ->
      let mgr, b1, r1, b2, r2 = make_pair ~rows1 ~rows2:fixed_rows2 in
      let before = M.stats mgr in
      let reset () = M.clear_caches mgr in
      let pairs1 = [ (b1.(0), b2.(0)) ] in
      let pairs2 = [ (b1.(0), b2.(0)); (b1.(1), b2.(1)) ] in
      let naive1 = time_ms ~reset (fun () -> ignore (Core.Compile.join_naive mgr r1 r2 pairs1)) in
      let opt1 = time_ms ~reset (fun () -> ignore (Core.Compile.join_rename mgr r1 r2 pairs1)) in
      let naive2 = time_ms ~reset (fun () -> ignore (Core.Compile.join_naive mgr r1 r2 pairs2)) in
      let opt2 = time_ms ~reset (fun () -> ignore (Core.Compile.join_rename mgr r1 r2 pairs2)) in
      let after = M.stats mgr in
      row "%-10d %12d %14.1f %14.1f %14.1f %14.1f %7.1f%% %12d\n" rows1
        (M.node_count mgr r1) naive1 opt1 naive2 opt2
        (100. *. M.cache_hit_rate ~before after)
        after.M.peak_nodes)
    join_sizes;
  paper_note "renaming is 2-3x faster than the equality-clause strategy"

(* φ1 = P(y, x, z) and φ2 = Q(y, x, z): two relations over the SAME
   three wide sparse attributes (active domains of 1024, like the
   paper's city/zipcode-scale domains), quantifying the middle
   attribute x.  In this regime the projections ∃x·φ stay large, which
   is where the fused operators pay off (the paper's setting: |BDD(P)|
   in the 10^5-10^6 node range). *)
let pq_dom = 1024

let make_pq ?(seed = 0) ~rows_p ~rows_q () =
  let rng = Fcv_util.Rng.create (rows_p + (3 * rows_q) + (77 * seed)) in
  let mgr = M.create ~nvars:0 () in
  let y = Fd.alloc mgr ~name:"y" ~dom_size:pq_dom in
  let x = Fd.alloc mgr ~name:"x" ~dom_size:pq_dom in
  let z = Fd.alloc mgr ~name:"z" ~dom_size:pq_dom in
  let w = Fd.width x in
  let levels = Array.concat [ y.Fd.levels; x.Fd.levels; z.Fd.levels ] in
  let encode rows seed =
    let rng = Fcv_util.Rng.create seed in
    let codes =
      List.init rows (fun _ ->
          (Fcv_util.Rng.int rng pq_dom lsl (2 * w))
          lor (Fcv_util.Rng.int rng pq_dom lsl w)
          lor Fcv_util.Rng.int rng pq_dom)
      |> List.sort_uniq compare |> Array.of_list
    in
    Fcv_bdd.Of_codes.build mgr ~levels ~codes
  in
  let fp = encode rows_p (Fcv_util.Rng.int rng 1_000_000) in
  let fq = encode rows_q (Fcv_util.Rng.int rng 1_000_000) in
  (mgr, x, fp, fq)

let pq_sizes =
  match scale with
  | Quick -> [ 50_000; 75_000; 100_000; 150_000 ]
  | Full -> [ 50_000; 100_000; 200_000; 300_000; 400_000 ]

let fixed_q = match scale with Quick -> 50_000 | Full -> 100_000

(* Fig 6(c) quantifies universally, which in constraint checking is
   applied to implications — dense formulas.  φ = (P ⇒ P′) over the
   same blocks. *)
let make_pq_dense ?(seed = 0) ~rows_p ~rows_q () =
  let rng = Fcv_util.Rng.create (rows_p + (5 * rows_q) + (77 * seed)) in
  let mgr = M.create ~nvars:0 () in
  let y = Fd.alloc mgr ~name:"y" ~dom_size:pq_dom in
  let x = Fd.alloc mgr ~name:"x" ~dom_size:pq_dom in
  let z = Fd.alloc mgr ~name:"z" ~dom_size:pq_dom in
  let w = Fd.width x in
  let levels = Array.concat [ y.Fd.levels; x.Fd.levels; z.Fd.levels ] in
  let encode rows seed =
    let rng = Fcv_util.Rng.create seed in
    let codes =
      List.init rows (fun _ ->
          (Fcv_util.Rng.int rng pq_dom lsl (2 * w))
          lor (Fcv_util.Rng.int rng pq_dom lsl w)
          lor Fcv_util.Rng.int rng pq_dom)
      |> List.sort_uniq compare |> Array.of_list
    in
    Fcv_bdd.Of_codes.build mgr ~levels ~codes
  in
  let phi rows = O.bimp mgr (encode rows (Fcv_util.Rng.int rng 1_000_000))
                   (encode rows (Fcv_util.Rng.int rng 1_000_000)) in
  let fp = phi rows_p in
  let fq = phi rows_q in
  (mgr, x, fp, fq)

let fig6b () =
  section "Fig 6(b): existential pull-up — Ex(P) OR Ex(Q) vs appex(P OR Q) (ms)";
  row "%-10s %12s %18s %20s %8s %12s\n" "P rows" "P nodes" "Ex(P) or Ex(Q)"
    "appex(P or Q)" "hit%" "peak nodes";
  List.iter
    (fun rows_p ->
      let runs =
        List.map
          (fun seed ->
            let mgr, x, fp, fq = make_pq ~seed ~rows_p ~rows_q:fixed_q () in
            let before = M.stats mgr in
            let levels = Array.to_list x.Fd.levels in
            let reset () = M.clear_caches mgr in
            let separate =
              time_ms ~repeat:1 ~reset (fun () ->
                  ignore (O.bor mgr (O.exists mgr levels fp) (O.exists mgr levels fq)))
            in
            let fused =
              time_ms ~repeat:1 ~reset (fun () -> ignore (O.appex mgr O.Or levels fp fq))
            in
            let after = M.stats mgr in
            ( M.node_count mgr fp,
              separate,
              fused,
              M.cache_hit_rate ~before after,
              after.M.peak_nodes ))
          [ 1; 2; 3 ]
      in
      let nodes = match runs with (n, _, _, _, _) :: _ -> n | [] -> 0 in
      let separate = mean (List.map (fun (_, s, _, _, _) -> s) runs) in
      let fused = mean (List.map (fun (_, _, f, _, _) -> f) runs) in
      let hit = mean (List.map (fun (_, _, _, h, _) -> h) runs) in
      let peak = List.fold_left (fun acc (_, _, _, _, p) -> max acc p) 0 runs in
      row "%-10d %12d %18.1f %20.1f %7.1f%% %12d\n" rows_p nodes separate fused
        (100. *. hit) peak)
    pq_sizes;
  paper_note "pull-up (appex over the disjunction) wins"

let fig6c () =
  section "Fig 6(c): universal push-down — FAx(P) AND FAx(Q) vs appall(P AND Q) (ms)";
  row "%-10s %12s %20s %20s %8s %12s\n" "P rows" "P nodes" "FAx(P) and FAx(Q)"
    "appall(P and Q)" "hit%" "peak nodes";
  List.iter
    (fun rows_p ->
      let runs =
        List.map
          (fun seed ->
            let mgr, x, fp, fq = make_pq_dense ~seed ~rows_p ~rows_q:fixed_q () in
            let before = M.stats mgr in
            let levels = Array.to_list x.Fd.levels in
            let reset () = M.clear_caches mgr in
            let pushed =
              time_ms ~repeat:1 ~reset (fun () ->
                  ignore (O.band mgr (O.forall mgr levels fp) (O.forall mgr levels fq)))
            in
            let fused =
              time_ms ~repeat:1 ~reset (fun () -> ignore (O.appall mgr O.And levels fp fq))
            in
            let after = M.stats mgr in
            ( M.node_count mgr fp,
              pushed,
              fused,
              M.cache_hit_rate ~before after,
              after.M.peak_nodes ))
          [ 1; 2; 3 ]
      in
      let nodes = match runs with (n, _, _, _, _) :: _ -> n | [] -> 0 in
      let pushed = mean (List.map (fun (_, s, _, _, _) -> s) runs) in
      let fused = mean (List.map (fun (_, _, f, _, _) -> f) runs) in
      let hit = mean (List.map (fun (_, _, _, h, _) -> h) runs) in
      let peak = List.fold_left (fun acc (_, _, _, _, p) -> max acc p) 0 runs in
      row "%-10d %12d %20.1f %20.1f %7.1f%% %12d\n" rows_p nodes pushed fused
        (100. *. hit) peak)
    pq_sizes;
  paper_note "push-down (separate foralls, then AND) wins over the fused form";
  paper_note "operands are dense implications, the shape a universal constraint quantifies"

let all () =
  fig6a ();
  fig6b ();
  fig6c ()
