(** Shared infrastructure for the experiment harness: scale profiles,
    result printing, and a Bechamel wrapper for micro-measurements. *)

(* -- scale profiles --------------------------------------------------------- *)

type scale = Quick | Full

let scale =
  match Sys.getenv_opt "FCV_BENCH_SCALE" with
  | Some ("full" | "FULL") -> Full
  | _ -> Quick

(* paper scale: 400k-tuple relations, 20 relations/family, 10^7-node
   budget; quick scale keeps every series' SHAPE while finishing in
   minutes *)
let synth_rows = match scale with Quick -> 40_000 | Full -> 400_000
let relations_per_family = match scale with Quick -> 6 | Full -> 20

let customer_sizes =
  match scale with
  | Quick -> [ 25_000; 50_000; 100_000; 200_000 ]
  | Full -> [ 50_000; 100_000; 200_000; 300_000; 400_000 ]

let thresholds =
  match scale with
  | Quick -> [ 1_000; 100_000; 1_000_000 ]
  | Full -> [ 1_000; 100_000; 1_000_000; 10_000_000 ]

(* -- output ------------------------------------------------------------------ *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

let paper_note fmt = Printf.ksprintf (fun s -> Printf.printf "  [paper] %s\n" s) fmt

(* -- kernel digests -------------------------------------------------------------- *)

(** One-line BDD-kernel digest — apply-cache hit rate, peak node count,
    budget trips — since [before] (whole manager history when omitted).
    E10–E16 print this under their timing tables. *)
let kernel_note ?before mgr =
  let module M = Fcv_bdd.Manager in
  let s = M.stats mgr in
  let trips =
    match before with
    | Some b -> s.M.budget_trips - b.M.budget_trips
    | None -> s.M.budget_trips
  in
  Printf.printf "  [kernel] apply-cache hit rate %.1f%%, peak nodes %d, budget trips %d\n"
    (100. *. M.cache_hit_rate ?before s)
    s.M.peak_nodes trips

(* -- timing -------------------------------------------------------------------- *)

(** Median wall-clock milliseconds of [f], with caches cleared by
    [reset] before every run so repetitions don't measure cache
    hits. *)
let time_ms ?(repeat = 3) ?(reset = fun () -> ()) f =
  let durations =
    List.init repeat (fun _ ->
        reset ();
        let _, ms = Fcv_util.Timer.time_ms f in
        ms)
  in
  let sorted = List.sort compare durations in
  List.nth sorted (repeat / 2)

(** Nanoseconds per run of a micro-operation, estimated by Bechamel's
    OLS over monotonic-clock samples. *)
let bechamel_ns ?(quota = 0.5) name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let results =
    List.map
      (fun elt ->
        let raw = Benchmark.run cfg [ instance ] elt in
        let ols =
          Analyze.one
            (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
            instance raw
        in
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> ns
        | _ -> nan)
      (Test.elements test)
  in
  match results with [ ns ] -> ns | _ -> nan

(* -- small statistics ------------------------------------------------------------ *)

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let histogram ~lo ~hi ~bins xs =
  let counts = Array.make (bins + 1) 0 in
  (* last bin collects everything above [hi] (the paper thresholds at 2.5) *)
  List.iter
    (fun x ->
      if x > hi then counts.(bins) <- counts.(bins) + 1
      else begin
        let b =
          int_of_float (float_of_int bins *. (x -. lo) /. (hi -. lo))
          |> max 0
          |> min (bins - 1)
        in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  counts

(** Spearman rank correlation between two orderings of the same items
    (used to quantify Fig. 2(b)/(c): how well a heuristic's ranking of
    the 120 orderings matches the true size ranking). *)
let spearman xs ys =
  let n = List.length xs in
  if n < 2 then nan
  else begin
    let rank l =
      let sorted = List.sort compare l in
      List.map (fun x ->
          let rec idx i = function
            | [] -> assert false
            | y :: rest -> if y = x then i else idx (i + 1) rest
          in
          float_of_int (idx 0 sorted))
        l
    in
    let rx = rank xs and ry = rank ys in
    let d2 =
      List.fold_left2 (fun acc a b -> acc +. ((a -. b) ** 2.)) 0. rx ry
    in
    1. -. (6. *. d2 /. float_of_int (n * ((n * n) - 1)))
  end
