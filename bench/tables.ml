(** Experiments E15–E16: Table 1 (variable-ordering gain on five
    constraint-checking queries) and Table 2 (time to fill the BDD
    node budget — the §4 thresholding overhead). *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
open Bench_util

(* -- Table 1 ------------------------------------------------------------------ *)

(* Synthetic database: a structured 5-attribute 1-PROD relation t1
   (where ordering matters), two join tables t2(a0, a1), t3(a1, a2)
   and a rule table c1(a0, a1). *)
let make_db () =
  let rng = Fcv_util.Rng.create 1234 in
  let db = Fcv_datagen.Synth.make_db ~attrs:5 ~dom:100 in
  let t1 =
    Fcv_datagen.Synth.generate rng db ~name:"t1" ~attrs:5 ~dom:100 ~rows:synth_rows
      ~family:(Fcv_datagen.Synth.Prod 1)
  in
  let t2 = R.Database.create_table db ~name:"t2" ~attrs:[ ("x", "d0"); ("y", "d1") ] in
  let t3 = R.Database.create_table db ~name:"t3" ~attrs:[ ("y", "d1"); ("z", "d2") ] in
  let c1 = R.Database.create_table db ~name:"c1" ~attrs:[ ("x", "d0"); ("y", "d1") ] in
  (* t2/t3: projections of t1's first attributes plus noise, so Q4/Q5
     joins have realistic hit rates *)
  R.Table.iter t1 (fun rowx ->
      if Fcv_util.Rng.bernoulli rng 0.1 then begin
        R.Table.insert_coded t2 [| rowx.(0); rowx.(1) |];
        R.Table.insert_coded t3 [| rowx.(1); rowx.(2) |]
      end);
  for _ = 1 to 2_000 do
    R.Table.insert_coded t2 [| Fcv_util.Rng.int rng 100; Fcv_util.Rng.int rng 100 |];
    R.Table.insert_coded t3 [| Fcv_util.Rng.int rng 100; Fcv_util.Rng.int rng 100 |]
  done;
  (* c1 allows most observed t2 pairs *)
  R.Table.iter t2 (fun row ->
      if not (Fcv_util.Rng.bernoulli rng 0.001) then
        R.Table.insert_coded c1 (Array.copy row));
  db

let queries =
  [
    ("Q1 membership", "forall x, y . t2(x, y) -> c1(x, y)");
    ("Q2 implication", "forall y . t1(0, y, _, _, _) -> y in {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}");
    ("Q3 fd", "forall x, y1, y2 . t2(x, y1) and t2(x, y2) -> y1 = y2");
    ("Q4 join-exists", "forall x, y . t2(x, y) -> (exists z . t3(y, z))");
    ("Q5 multi-join", "forall x, y, z . t2(x, y) and t3(y, z) -> t1(x, y, z, _, _)");
  ]

let table1 () =
  section "Table 1: variable-ordering gain (ms per constraint check)";
  let db = make_db () in
  let parsed = List.map (fun (n, s) -> (n, Core.Fol_parser.of_string s)) queries in
  let build strategy =
    let index = Core.Index.create db in
    Core.Checker.ensure_indices ~strategy index (List.map snd parsed);
    index
  in
  let optimized = build Core.Ordering.Prob_converge in
  let random = build (Core.Ordering.Random_order 3) in
  let check index ?pipeline c =
    let reset () = M.clear_caches (Core.Index.mgr index) in
    time_ms ~reset (fun () -> ignore (Core.Checker.check ?pipeline index c))
  in
  let mgr_opt = Core.Index.mgr optimized in
  row "%-16s %10s %14s %14s %16s %8s %12s\n" "query" "SQL" "BDD: random" "BDD: optimized"
    "BDD: no-rewrite" "hit%" "peak nodes";
  List.iter
    (fun (name, c) ->
      let sql = time_ms (fun () -> ignore (Core.Checker.check_sql db c)) in
      let bdd_rand = check random c in
      let before = M.stats mgr_opt in
      let bdd_opt = check optimized c in
      let after = M.stats mgr_opt in
      let bdd_norw = check optimized ~pipeline:Core.Checker.naive_pipeline c in
      row "%-16s %10.1f %14.1f %14.1f %16.1f %7.1f%% %12d\n" name sql bdd_rand bdd_opt
        bdd_norw
        (100. *. M.cache_hit_rate ~before after)
        after.M.peak_nodes)
    parsed;
  kernel_note mgr_opt;
  (* index size context *)
  let sizes index =
    List.map
      (fun e -> Printf.sprintf "%s=%d" (R.Table.name e.Core.Index.table) (Core.Index.entry_size index e))
      (Core.Index.entries index)
  in
  row "  random-order index nodes:    %s\n" (String.concat " " (sizes random));
  row "  optimized-order index nodes: %s\n" (String.concat " " (sizes optimized));
  paper_note "paper (ms): SQL 1778-4234; BDD random 1113-2347; BDD optimized 240-1041";
  paper_note "random ordering gains ~2x over SQL; Prob-Converge ordering 4-6x";
  paper_note "the no-rewrite column is our ablation of the Section 4.4 pipeline"

(* -- Table 2 ------------------------------------------------------------------- *)

(* Adversarial workload: the equality of two w-bit blocks with REVERSED
   bit pairing under a blocked order has a BDD exponential in w — node
   count roughly doubles per conjunct, so any budget fills quickly. *)
let fill_budget budget =
  let mgr = M.create ~nvars:0 ~max_nodes:budget () in
  let w = 26 in
  let x = Fd.alloc mgr ~name:"x" ~dom_size:(1 lsl w) in
  let y = Fd.alloc mgr ~name:"y" ~dom_size:(1 lsl w) in
  let t0 = Fcv_util.Timer.now () in
  (match
     let acc = ref M.one in
     for i = 0 to w - 1 do
       let xi = M.ithvar mgr x.Fd.levels.(i) in
       let yi = M.ithvar mgr y.Fd.levels.(w - 1 - i) in
       acc := O.band mgr !acc (O.biff mgr xi yi)
     done;
     !acc
   with
  | _ -> failwith "Table 2: budget was never exceeded — increase the hard formula's width"
  | exception M.Node_limit _ -> ());
  let s = M.stats mgr in
  (Fcv_util.Timer.now () -. t0, s.M.peak_nodes, s.M.budget_trips)

let table2 () =
  section "Table 2: time to fill the BDD node budget (thresholding overhead)";
  row "%-14s %12s %12s %8s\n" "budget (nodes)" "time (s)" "peak nodes" "trips";
  List.iter
    (fun b ->
      let t, peak, trips = fill_budget b in
      row "%-14d %12.2f %12d %8d\n" b t peak trips)
    thresholds;
  paper_note "paper: 10^3 -> 2.0s, 10^5 -> 2.2s, 10^6 -> 3.5s, 10^7 -> 17s";
  paper_note
    "(the paper's floor of ~2s is BuDDy's fixed start-up/allocation cost; ours \
     allocates lazily, so small budgets fill almost instantly — the SHAPE, \
     slow growth until ~10^6 then a jump, is what matters)";
  paper_note
    "when the budget trips, the checker falls back to SQL; against violation \
     queries of 100-250s the abort overhead is 1-3%%"

let all () =
  table1 ();
  table2 ()
