(* Planner-vs-legacy validation benchmark.

     dune exec bench/plan.exe [-- OUT.json]

   Runs the monitor's steady-state validation shape — net-zero
   mutation epoch, then a validate pass — over three workloads, twice
   each: once under [Legacy] planning (the paper's blind
   try-BDD-first thresholding) and once under [Planned] (the
   cost-based planner choosing per-constraint strategies and learning
   from every result).  Writes BENCH_plan.json.

   Workloads:
   - university (50) and retail (24): the same constraint suites as
     bench/parallel.ml — the planner must never lose on workloads the
     legacy path already handles well;
   - pathological: a university suite run under a node budget planted
     just above the index size, so every BDD compile trips the budget
     and falls back.  Legacy pays the abandoned attempt on every
     pass; the planner demotes tripping constraints straight to SQL
     after [trip_demote] consecutive trips and stops paying it.

   Gates (exit 1 on violation; fatal in CI via bench/ci.sh under
   FCV_CI=1):
   - verdict exactness: planned and legacy validation find the same
     violated count on every pass;
   - the planner is never slower than legacy by more than 10% on any
     workload (mean validate ms over the timed passes);
   - the pathological plant is real: the legacy run must actually
     trip the budget (else the workload measures nothing). *)

module R = Fcv_relation
module T = Fcv_util.Telemetry
module M = Fcv_bdd.Manager

let warm_passes = 2
let timed_passes = 5
let slack = 1.10

(* -- workloads (the university/retail suites match bench/parallel.ml) -------- *)

let university_constraints =
  [
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
    "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
    "forall s, d1, k1, d2, k2 . student(s, d1, k1) and student(s, d2, k2) -> d1 = d2";
    "forall c, a1, a2 . course(c, a1) and course(c, a2) -> a1 = a2";
  ]
  @ List.init 46 (fun i ->
        Printf.sprintf
          "forall s, k . student(s, %d, k) -> (exists c . takes(s, c) and course(c, %d))"
          (i mod 8) (i / 8))

let university () =
  let rng = Fcv_util.Rng.create 42 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 3_000; violators = 30 }
  in
  (db, university_constraints, None)

let retail_constraints =
  List.map snd Fcv_datagen.Retail.audit_constraints
  @ List.init 4 (fun sg ->
        Printf.sprintf
          "forall c, ch . orders(_, c, _, _, ch) and customers(c, _, _, %d) -> \
           allowed_channel(%d, ch)"
          sg sg)
  @ List.init 12 (fun k ->
        Printf.sprintf "forall o . shipments(o, %d, _) -> (exists hs . carriers(%d, hs))" k k)

let retail () =
  let rng = Fcv_util.Rng.create 42 in
  let gen =
    Fcv_datagen.Retail.generate rng
      {
        Fcv_datagen.Retail.default with
        customers = 2_000;
        products = 500;
        orders = 10_000;
        bad_ref_rate = 0.002;
        bad_dest_rate = 0.01;
        bad_channel_rate = 0.005;
      }
  in
  (gen.Fcv_datagen.Retail.db, retail_constraints, None)

(* The plant: join-heavy policy constraints under a budget left just
   [headroom] nodes above the built index — enough for the per-epoch
   row churn, never enough for a 3-atom join compile. *)
let pathological_constraints =
  [
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
    "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
  ]
  @ List.init 10 (fun i ->
        Printf.sprintf
          "forall s, k . student(s, %d, k) -> (exists c . takes(s, c) and course(c, %d))"
          (i mod 8) (i / 8))

let pathological () =
  let rng = Fcv_util.Rng.create 42 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 1_500; violators = 10 }
  in
  (db, pathological_constraints, Some 4_096)

(* -- measurement ------------------------------------------------------------- *)

type mode_run = {
  mean_ms : float;
  violated : int;
  trips : int;  (** manager budget trips over the whole run *)
  pstats : Core.Planner.stats option;  (** [Planned] runs only *)
}

let count_violated reports =
  List.length
    (List.filter (fun r -> r.Core.Monitor.outcome = Core.Checker.Violated) reports)

(* One net-zero mutation epoch through the monitor (so dirtiness
   tracking sees it): duplicate an existing row of the first indexed
   table, then delete the duplicate again. *)
let mutation_pair monitor =
  let index = Core.Monitor.index monitor in
  let table =
    match Core.Index.entries index with
    | e :: _ -> e.Core.Index.table
    | [] -> failwith "mutation_pair: no indexed table"
  in
  let table_name = R.Table.name table in
  let row = Array.copy (R.Table.row table 0) in
  Core.Monitor.insert monitor ~table_name row;
  ignore (Core.Monitor.delete monitor ~table_name row)

let mode_name = function
  | Core.Monitor.Planned -> "planner"
  | Core.Monitor.Legacy -> "legacy"
  | Core.Monitor.Forced s -> "forced-" ^ Core.Checker.strategy_name s

let run_mode make planning =
  let db, sources, headroom = make () in
  let formulas = List.map Core.Fol_parser.of_string sources in
  let index = Core.Index.create ~max_nodes:1_000_000 db in
  Core.Checker.ensure_indices index formulas;
  let mgr = Core.Index.mgr index in
  (match headroom with
  | Some h -> M.set_max_nodes mgr (M.size mgr + h)
  | None -> ());
  let trips0 = (M.stats mgr).M.budget_trips in
  let monitor = Core.Monitor.create ~planning index in
  List.iter (fun src -> ignore (Core.Monitor.add monitor src)) sources;
  let pass () =
    (* reclaim abandoned-attempt garbage outside the timer, so a
       tight-budget run never starves index maintenance of nodes *)
    ignore (Core.Monitor.gc monitor);
    mutation_pair monitor;
    let t0 = Fcv_util.Timer.now () in
    let reports = Core.Monitor.validate monitor in
    ((Fcv_util.Timer.now () -. t0) *. 1000., count_violated reports)
  in
  for _ = 1 to warm_passes do
    ignore (pass ())
  done;
  let runs = List.init timed_passes (fun _ -> pass ()) in
  let violated =
    match List.sort_uniq compare (List.map snd runs) with
    | [ v ] -> v
    | vs ->
      failwith
        (Printf.sprintf "%s: violated count drifted across passes: {%s}"
           (mode_name planning)
           (String.concat ", " (List.map string_of_int vs)))
  in
  let mean_ms =
    List.fold_left ( +. ) 0. (List.map fst runs) /. float_of_int timed_passes
  in
  {
    mean_ms;
    violated;
    trips = (M.stats mgr).M.budget_trips - trips0;
    pstats =
      (match planning with
      | Core.Monitor.Planned -> Some (Core.Planner.stats (Core.Monitor.planner monitor))
      | _ -> None);
  }

type workload_result = {
  name : string;
  n_constraints : int;
  legacy : mode_run;
  planner : mode_run;
  ratio : float;
  failures : string list;
}

let run_workload name make ~expect_trips =
  Printf.printf "\n== %s ==\n%!" name;
  let legacy = run_mode make Core.Monitor.Legacy in
  let planner = run_mode make Core.Monitor.Planned in
  let ratio = if legacy.mean_ms > 0. then planner.mean_ms /. legacy.mean_ms else 1. in
  let failures =
    (if planner.violated <> legacy.violated then
       [
         Printf.sprintf "verdict drift: planner found %d violations, legacy %d"
           planner.violated legacy.violated;
       ]
     else [])
    @ (if ratio > slack then
         [
           Printf.sprintf "planner mean %.2f ms is %.0f%% slower than legacy %.2f ms (>%.0f%% slack)"
             planner.mean_ms
             ((ratio -. 1.) *. 100.)
             legacy.mean_ms
             ((slack -. 1.) *. 100.);
         ]
       else [])
    @
    if expect_trips && legacy.trips = 0 then
      [ "pathological plant failed: legacy never tripped the budget" ]
    else []
  in
  Printf.printf "  legacy   mean %8.2f ms   violated %d   budget trips %d\n%!"
    legacy.mean_ms legacy.violated legacy.trips;
  Printf.printf "  planner  mean %8.2f ms   violated %d   budget trips %d" planner.mean_ms
    planner.violated planner.trips;
  (match planner.pstats with
  | Some s ->
    Printf.printf "   (plans: %d hit, %d miss, %d probe, %d replan)\n%!" s.Core.Planner.hits
      s.Core.Planner.misses s.Core.Planner.probes s.Core.Planner.replans
  | None -> print_newline ());
  Printf.printf "  ratio    %.3fx %s\n%!" ratio
    (if failures = [] then "(gate: <= 1.10x — ok)" else "(GATE FAILED)");
  List.iter (fun m -> Printf.printf "  FAIL: %s\n%!" m) failures;
  {
    name;
    n_constraints =
      (let _, sources, _ = make () in
       List.length sources);
    legacy;
    planner;
    ratio;
    failures;
  }

(* -- output ------------------------------------------------------------------ *)

let json_of_mode m =
  T.Obj
    ([
       ("mean_ms", T.Float m.mean_ms);
       ("violated", T.Int m.violated);
       ("budget_trips", T.Int m.trips);
     ]
    @
    match m.pstats with
    | Some s ->
      [
        ( "planner",
          T.Obj
            [
              ("hits", T.Int s.Core.Planner.hits);
              ("misses", T.Int s.Core.Planner.misses);
              ("probes", T.Int s.Core.Planner.probes);
              ("replans", T.Int s.Core.Planner.replans);
            ] );
      ]
    | None -> [])

let json_of_workload w =
  T.Obj
    [
      ("name", T.String w.name);
      ("constraints", T.Int w.n_constraints);
      ("legacy", json_of_mode w.legacy);
      ("planner", json_of_mode w.planner);
      ("ratio", T.Float w.ratio);
      ("ok", T.Bool (w.failures = []));
      ("failures", T.List (List.map (fun m -> T.String m) w.failures));
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_plan.json" in
  Printf.printf
    "planner vs legacy validation — %d warm + %d timed passes per mode, gate <= %.2fx\n"
    warm_passes timed_passes slack;
  let uni = run_workload "university" university ~expect_trips:false in
  let ret = run_workload "retail" retail ~expect_trips:false in
  let path = run_workload "pathological" pathological ~expect_trips:true in
  let workloads = [ uni; ret; path ] in
  let ok = List.for_all (fun w -> w.failures = []) workloads in
  let doc =
    T.Obj
      [
        ("bench", T.String "plan");
        ( "env",
          T.Obj
            [
              ("cores", T.Int (Domain.recommended_domain_count ()));
              ("ocaml", T.String Sys.ocaml_version);
            ] );
        ("warm_passes", T.Int warm_passes);
        ("timed_passes", T.Int timed_passes);
        ("slack", T.Float slack);
        ("workloads", T.List (List.map json_of_workload workloads));
        ("ok", T.Bool ok);
      ]
  in
  let oc = open_out out in
  output_string oc (T.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out;
  if not ok then exit 1
