(* Memory-lifecycle churn benchmark for the long-running serving path.

     dune exec bench/churn.exe [-- OUT.json]

   Streams seeded insert/delete churn (with occasional fresh-value
   interning, which forces entry rebuilds and abandons level space)
   through a monitored index for a fixed number of validation cycles
   per workload, with the automatic GC policy enabled — exactly the
   regime `fcv serve` lives in.  Writes BENCH_churn.json with
   per-cycle lifecycle gauges and a summary.

   The gate (exit 1, fatal under FCV_CI=1 via bench/ci.sh):
   - after every forced compaction the store must hold at most 2× the
     reachable size of the live roots;
   - peak node count must stay under an absolute per-workload bound
     (a leak — dead entries surviving unregister, unbounded op
     caches, never-recycled levels — blows through it);
   - levels in use must stay under the 511 packing ceiling. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module T = Fcv_util.Telemetry

let cycles = 15
let ops_per_cycle = 300

(* Generous absolute ceiling on peak nodes: an order of magnitude
   above what a healthy run peaks at, far below what churn without
   reclamation accumulates. *)
let peak_bound = 2_000_000

let university_constraints =
  [
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
    "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
    "forall s, d1, k1, d2, k2 . student(s, d1, k1) and student(s, d2, k2) -> d1 = d2";
    "forall c, a1, a2 . course(c, a1) and course(c, a2) -> a1 = a2";
  ]

let university () =
  let rng = Fcv_util.Rng.create 42 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 1_000; courses = 120 }
  in
  (db, university_constraints)

let retail () =
  let rng = Fcv_util.Rng.create 42 in
  let gen =
    Fcv_datagen.Retail.generate rng
      { Fcv_datagen.Retail.default with customers = 800; products = 200; orders = 3_000 }
  in
  (gen.Fcv_datagen.Retail.db, List.map snd Fcv_datagen.Retail.audit_constraints)

(* One mutation: delete a random row, or insert a perturbed clone of
   one (sometimes with a freshly interned value, forcing a rebuild). *)
let churn_step rng mon db fresh =
  let tables = R.Database.table_names db in
  let tbl = List.nth tables (Fcv_util.Rng.int rng (List.length tables)) in
  let t = R.Database.table db tbl in
  let n = R.Table.cardinality t in
  if n = 0 then ()
  else if Fcv_util.Rng.bernoulli rng 0.4 then
    ignore
      (Core.Monitor.delete mon ~table_name:tbl
         (Array.copy (R.Table.row t (Fcv_util.Rng.int rng n))))
  else begin
    let row = Array.copy (R.Table.row t (Fcv_util.Rng.int rng n)) in
    let j = Fcv_util.Rng.int rng (Array.length row) in
    if Fcv_util.Rng.bernoulli rng 0.05 then begin
      incr fresh;
      row.(j) <-
        R.Dict.intern (R.Table.dict t j)
          (R.Value.of_string (Printf.sprintf "churn!%d" !fresh))
    end
    else row.(j) <- (R.Table.row t (Fcv_util.Rng.int rng n)).(j);
    Core.Monitor.insert mon ~table_name:tbl row
  end

type cycle_point = {
  cycle : int;
  nodes : int;
  live : int;
  dead_ratio : float;
  levels_used : int;
  gc_runs : int;
  violated : int;
  validate_ms : float;
}

let json_of_point p =
  T.Obj
    [
      ("cycle", T.Int p.cycle);
      ("nodes", T.Int p.nodes);
      ("live", T.Int p.live);
      ("dead_ratio", T.Float p.dead_ratio);
      ("levels_used", T.Int p.levels_used);
      ("gc_runs", T.Int p.gc_runs);
      ("violated", T.Int p.violated);
      ("validate_ms", T.Float p.validate_ms);
    ]

let failures = ref []

let require name ok msg =
  if not ok then failures := Printf.sprintf "%s: %s" name msg :: !failures

let run_workload name make =
  Printf.printf "\n== %s ==\n%!" name;
  let db, sources = make () in
  let rng = Fcv_util.Rng.create 7 in
  let index = Core.Index.create db in
  let mon = Core.Monitor.create index in
  List.iter (fun s -> ignore (Core.Monitor.add mon s)) sources;
  let fresh = ref 0 in
  let points = ref [] in
  for cycle = 1 to cycles do
    for _ = 1 to ops_per_cycle do
      churn_step rng mon db fresh
    done;
    let t0 = Fcv_util.Timer.now () in
    let reports = Core.Monitor.validate mon in
    let validate_ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
    ignore (Core.Monitor.gc mon);
    let live = Core.Index.live_nodes index in
    let nodes = M.size (Core.Index.mgr index) in
    require name
      (nodes <= 2 * live)
      (Printf.sprintf "cycle %d: %d nodes > 2x %d live after GC" cycle nodes live);
    require name
      (M.nvars (Core.Index.mgr index) <= M.max_level)
      (Printf.sprintf "cycle %d: %d levels past the ceiling" cycle
         (M.nvars (Core.Index.mgr index)));
    let s = Core.Index.lifecycle_stats index in
    let violated =
      List.length
        (List.filter (fun r -> r.Core.Monitor.outcome = Core.Checker.Violated) reports)
    in
    points :=
      {
        cycle;
        nodes;
        live;
        dead_ratio = s.Core.Index.dead;
        levels_used = s.Core.Index.levels_used;
        gc_runs = s.Core.Index.gc_runs;
        violated;
        validate_ms;
      }
      :: !points;
    Printf.printf
      "  cycle %2d: nodes %7d  live %7d  levels %3d  gc %2d  violated %d  %.1f ms\n%!"
      cycle nodes live s.Core.Index.levels_used s.Core.Index.gc_runs violated validate_ms
  done;
  let s = Core.Index.lifecycle_stats index in
  require name
    (s.Core.Index.peak <= peak_bound)
    (Printf.sprintf "peak %d nodes > bound %d" s.Core.Index.peak peak_bound);
  require name (s.Core.Index.gc_runs >= cycles) "fewer GC runs than forced compactions";
  Printf.printf
    "  peak %d nodes  reclaimed %d nodes over %d GCs (%d level recycles)\n%!"
    s.Core.Index.peak s.Core.Index.gc_reclaimed s.Core.Index.gc_runs
    s.Core.Index.level_recycles;
  Core.Monitor.stop mon;
  T.Obj
    [
      ("name", T.String name);
      ("constraints", T.Int (List.length sources));
      ("cycles", T.Int cycles);
      ("ops_per_cycle", T.Int ops_per_cycle);
      ("peak_nodes", T.Int s.Core.Index.peak);
      ("peak_bound", T.Int peak_bound);
      ("gc_runs", T.Int s.Core.Index.gc_runs);
      ("gc_reclaimed", T.Int s.Core.Index.gc_reclaimed);
      ("level_recycles", T.Int s.Core.Index.level_recycles);
      ("deferred_rebuilds", T.Int s.Core.Index.deferred_rebuilds);
      ("series", T.List (List.rev_map json_of_point !points));
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_churn.json" in
  Printf.printf "memory-lifecycle churn — %d cycles x %d ops per workload\n" cycles
    ops_per_cycle;
  let uni = run_workload "university" university in
  let ret = run_workload "retail" retail in
  let workloads = [ uni; ret ] in
  let doc =
    T.Obj
      [
        ("bench", T.String "churn");
        ("workloads", T.List workloads);
        ("ok", T.Bool (!failures = []));
      ]
  in
  let oc = open_out out in
  output_string oc (T.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" out;
  match !failures with
  | [] -> Printf.printf "churn gate passed\n%!"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL %s\n%!" f) (List.rev fs);
    exit 1
