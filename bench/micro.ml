(** Bechamel micro-benchmarks of the BDD kernel primitives — the cost
    model underlying every experiment: mk/hash-consing, apply,
    quantification, fused appex/appall, rename, restrict, model
    counting and the direct sorted-codes relation encoder. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
open Bench_util

let all () =
  section "Bechamel micro-benchmarks (ns/op unless noted)";
  (* a mid-sized random relation as the common operand *)
  let rng = Fcv_util.Rng.create 99 in
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "da" 128);
  R.Database.add_domain db (R.Dict.of_int_range "db" 128);
  R.Database.add_domain db (R.Dict.of_int_range "dc" 128);
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("a", "da"); ("b", "db"); ("c", "dc") ] in
  for _ = 1 to 20_000 do
    R.Table.insert_coded t
      [| Fcv_util.Rng.int rng 128; Fcv_util.Rng.int rng 128; Fcv_util.Rng.int rng 128 |]
  done;
  let enc = R.Encode.encode t ~order:[| 0; 1; 2 |] in
  let m = enc.R.Encode.mgr in
  let root = enc.R.Encode.root in
  let a_block = enc.R.Encode.blocks.(0) in
  let b_block = enc.R.Encode.blocks.(1) in
  let scratch = Fd.alloc m ~name:"s" ~dom_size:128 in
  let row = [| 5; 17; 99 |] in
  let row_print name ns =
    if ns >= 1e6 then Printf.printf "  %-34s %12.2f ms\n" name (ns /. 1e6)
    else if ns >= 1e3 then Printf.printf "  %-34s %12.2f us\n" name (ns /. 1e3)
    else Printf.printf "  %-34s %12.1f ns\n" name ns
  in
  let bench name fn =
    let ns = bechamel_ns ~quota:0.4 name fn in
    row_print name ns
  in
  bench "mk (unique-table hit)" (fun () -> ignore (M.mk m (M.var m root) (M.low m root) (M.high m root)));
  bench "eq_const (7-bit block)" (fun () -> ignore (Fd.eq_const m a_block 64));
  bench "tuple minterm (3 blocks)" (fun () -> ignore (R.Encode.minterm m enc.R.Encode.blocks row));
  bench "membership eval" (fun () -> ignore (R.Encode.mem enc row));
  bench "apply AND (cached)" (fun () -> ignore (O.band m root root));
  bench "insert+delete maintenance" (fun () ->
      R.Encode.insert enc row;
      R.Encode.delete enc row);
  bench "restrict one block" (fun () ->
      M.clear_caches m;
      ignore (O.restrict m root [ (a_block.Fd.levels.(0), true) ]));
  bench "exists over one block" (fun () ->
      M.clear_caches m;
      ignore (O.exists m (Array.to_list a_block.Fd.levels) root));
  bench "appex AND over one block" (fun () ->
      M.clear_caches m;
      ignore (O.appex m O.And (Array.to_list a_block.Fd.levels) root (Fd.valid m a_block)));
  bench "rename block (order-preserving)" (fun () ->
      M.clear_caches m;
      ignore (Fd.rename m (O.exists m (Array.to_list b_block.Fd.levels) root) ~src:b_block ~dst:scratch));
  bench "satcount" (fun () -> ignore (Fcv_bdd.Sat.count m root));
  bench "node_count" (fun () -> ignore (M.node_count m root));
  Printf.printf "  (relation: 20k rows over 128^3; BDD %d nodes)\n" (M.node_count m root)
