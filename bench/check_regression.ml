(* Perf-regression gate for the parallel-validation benchmark.

     dune exec bench/check_regression.exe [-- [--require-speedup] [CURRENT [BASELINE]]]

   Compares BENCH_parallel.json (default) against the committed
   bench/baseline.json and exits non-zero on regression; bench/ci.sh
   treats that as a warning locally and fatal under FCV_CI=1.

   What is gated, and why it stays machine-portable:
   - per-workload violated counts must match the baseline EXACTLY —
     the workloads are seeded, so any drift means the checker's
     verdicts changed, not the machine;
   - parallelism may never be a SLOWDOWN: any current j>1 point
     within this machine's core count with speedup < 1.0 fails,
     baseline or no baseline — a gate that blesses regressions
     against an already-regressed baseline gates nothing;
   - per-j speedups may not fall more than 25% below the baseline's,
     but only for j within BOTH machines' core counts (env.cores is
     recorded in each file) — an oversubscribed j measures scheduler
     noise, and a 1-core runner measures nothing;
   - with --require-speedup (the multicore CI job), parallelism must
     WIN outright: university j=4 speedup >= 1.5x on a >=4-core
     machine (>= 1.1x at j=2 when only 2-3 cores; skipped with a
     message below 2 cores).  Retail is now gated too — its BDD
     passes are too short to promise 1.5x portably, so it gets its
     own lower fatal floor (1.2x at j=4, 1.05x at j=2) instead of
     the informational report it used to get;
   - absolute milliseconds are never compared across runs.

   A speedup more than 25% ABOVE baseline is reported as a
   re-baselining hint, not a failure — a gate should only stop
   regressions. *)

module J = Fcv_util.Telemetry.Json

let tolerance = 0.25

let failures = ref 0
let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL %s\n" s) fmt
let note fmt = Printf.ksprintf (fun s -> Printf.printf "     %s\n" s) fmt

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  J.of_string s

let mem name j =
  match J.member name j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing field %S" name)

let int_f name j =
  match mem name j with
  | Fcv_util.Telemetry.Int i -> i
  | _ -> failwith (Printf.sprintf "field %S is not an int" name)

let float_f name j =
  match mem name j with
  | Fcv_util.Telemetry.Float f -> f
  | Fcv_util.Telemetry.Int i -> float_of_int i
  | _ -> failwith (Printf.sprintf "field %S is not a number" name)

let str_f name j =
  match mem name j with
  | Fcv_util.Telemetry.String s -> s
  | _ -> failwith (Printf.sprintf "field %S is not a string" name)

let list_f name j =
  match mem name j with
  | Fcv_util.Telemetry.List l -> l
  | _ -> failwith (Printf.sprintf "field %S is not a list" name)

let cores j = int_f "cores" (mem "env" j)

let find_workload doc name =
  List.find_opt (fun w -> str_f "name" w = name) (list_f "workloads" doc)

let check_workload ~max_jobs ~current base =
  let name = str_f "name" base in
  match find_workload current name with
  | None -> fail "workload %S missing from current results" name
  | Some cur ->
    if int_f "constraints" cur <> int_f "constraints" base then
      fail "%s: constraint count changed (%d -> %d) — regenerate the baseline" name
        (int_f "constraints" base) (int_f "constraints" cur)
    else if int_f "violated" cur <> int_f "violated" base then
      fail "%s: violated count changed (%d -> %d) — verdicts drifted" name
        (int_f "violated" base) (int_f "violated" cur)
    else begin
      note "%s: %d violated of %d constraints — matches baseline" name
        (int_f "violated" base) (int_f "constraints" base);
      let cur_speedup j =
        List.find_map
          (fun p -> if int_f "jobs" p = j then Some (float_f "speedup" p) else None)
          (list_f "series" cur)
      in
      List.iter
        (fun p ->
          let j = int_f "jobs" p in
          if j > 1 && j <= max_jobs then begin
            let base_s = float_f "speedup" p in
            match cur_speedup j with
            | None -> fail "%s: no j=%d point in current results" name j
            | Some cur_s ->
              if cur_s < base_s *. (1. -. tolerance) then
                fail "%s: j=%d speedup %.2fx fell below baseline %.2fx - %d%%" name j
                  cur_s base_s (int_of_float (tolerance *. 100.))
              else begin
                note "%s: j=%d speedup %.2fx (baseline %.2fx) — ok" name j cur_s base_s;
                if cur_s > base_s *. (1. +. tolerance) then
                  note "%s: j=%d is >25%% faster than baseline; consider re-baselining"
                    name j
              end
          end)
        (list_f "series" base)
    end

(* No j within this machine's core budget may run SLOWER than
   sequential.  Gated against the current results alone: a slowdown is
   a bug in the parallel path no baseline can excuse. *)
let check_no_slowdown ~cores current =
  List.iter
    (fun w ->
      let name = str_f "name" w in
      List.iter
        (fun p ->
          let j = int_f "jobs" p in
          if j > 1 && j <= cores then begin
            let s = float_f "speedup" p in
            if s < 1.0 then
              fail "%s: j=%d is a SLOWDOWN (%.2fx < 1.00x) on a %d-core machine" name j s
                cores
          end)
        (list_f "series" w))
    (list_f "workloads" current)

(* The multicore CI promise: parallel validation must beat sequential
   by a real margin, not just break even. *)
let check_required_speedup ~cores current =
  let speedup_of wname j =
    match find_workload current wname with
    | None -> None
    | Some w ->
      List.find_map
        (fun p -> if int_f "jobs" p = j then Some (float_f "speedup" p) else None)
        (list_f "series" w)
  in
  let require wname j threshold ~fatal =
    match speedup_of wname j with
    | None -> fail "%s: no j=%d point to hold against the %.1fx floor" wname j threshold
    | Some s ->
      if s >= threshold then
        note "%s: j=%d speedup %.2fx meets the %.1fx floor" wname j s threshold
      else if fatal then
        fail "%s: j=%d speedup %.2fx below the required %.1fx" wname j s threshold
      else note "%s: j=%d speedup %.2fx below %.1fx (informational)" wname j s threshold
  in
  (* Retail's floor is deliberately lower than university's: its BDD
     passes are short, so the pool's fixed costs (hydration, task
     dispatch) eat a larger fraction of the win.  The 4-vCPU runner
     has cleared 1.2x at j=4 consistently since the PR-8 steady-state
     rewrite, so that is now a promise, not a report. *)
  if cores >= 4 then begin
    note "required-speedup gate: %d cores — university j=4 >= 1.5x, retail j=4 >= 1.2x"
      cores;
    require "university" 4 1.5 ~fatal:true;
    require "retail" 4 1.2 ~fatal:true
  end
  else if cores >= 2 then begin
    note
      "required-speedup gate: only %d cores — relaxed to university j=2 >= 1.1x, retail \
       j=2 >= 1.05x"
      cores;
    require "university" 2 1.1 ~fatal:true;
    require "retail" 2 1.05 ~fatal:true
  end
  else note "required-speedup gate: skipped (%d core — nothing to parallelise over)" cores

let () =
  let require_speedup = ref false in
  let positional =
    List.filter
      (fun a ->
        if a = "--require-speedup" then begin
          require_speedup := true;
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let current_path =
    match positional with p :: _ -> p | [] -> "BENCH_parallel.json"
  in
  let baseline_path =
    match positional with _ :: p :: _ -> p | _ -> "bench/baseline.json"
  in
  match (read_json current_path, read_json baseline_path) with
  | exception Sys_error msg ->
    Printf.printf "FAIL cannot read benchmark results: %s\n" msg;
    exit 1
  | exception J.Parse_error msg ->
    Printf.printf "FAIL malformed benchmark JSON: %s\n" msg;
    exit 1
  | current, baseline ->
    let max_jobs = min (cores current) (cores baseline) in
    Printf.printf "regression gate: %s vs %s (speedups gated up to j=%d: %d cores here, %d at baseline)\n"
      current_path baseline_path max_jobs (cores current) (cores baseline);
    (try
       List.iter (check_workload ~max_jobs ~current) (list_f "workloads" baseline);
       check_no_slowdown ~cores:(cores current) current;
       if !require_speedup then check_required_speedup ~cores:(cores current) current
     with Failure msg -> fail "%s" msg);
    if !failures > 0 then begin
      Printf.printf "regression gate: %d failure%s\n" !failures
        (if !failures = 1 then "" else "s");
      exit 1
    end;
    print_endline "regression gate: ok"
