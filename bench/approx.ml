(* Approximate-constraint benchmark: soft-check latency vs hard-check
   latency, and exactness of the reported violation rate, on the noise
   datagen family.

     dune exec bench/approx.exe [-- OUT.json]

   For each noise level the two sensor FDs are checked three ways:

   - hard (p = 1.0): the classical verdict, timed as the latency
     baseline;
   - soft (p = 0.999): the thresholded verdict with its exact rate,
     timed on the default route (FD fast path) and with the fast
     path ablated (the generic violation-BDD route, recorded as
     [generic_ms]);
   - recount: an independent row-scan ground truth — hash the distinct
     (sensor, location) projection pairs, then violations = Σ n(n−1)
     and bindings = Σ n² over the per-sensor group sizes n.  This is
     the same quantity the checker counts off the violation BDD
     (bindings satisfying the FD hypothesis / falsifying its body),
     computed with none of the checker's machinery.

   The gate (exit 1; fatal under FCV_CI=1 via bench/ci.sh):

   - the soft rate must equal the recount BIT FOR BIT — violation and
     binding counts as integers, the ratio as a float;
   - verdicts must be consistent: soft outcome = the exact threshold
     comparison over the recounted integers, hard outcome = (any
     violation at all), clean data (noise 0) reports a zero rate;
   - soft may not be more than [max_soft_over_hard]× slower than hard
     (bench/baseline_approx.json) — counting every violation instead
     of finding one must stay the same order of work.  The ratio is
     machine-portable; absolute milliseconds are never gated. *)

module C = Core.Checker
module F = Core.Formula
module N = Fcv_bdd.Nat
module T = Fcv_util.Telemetry
module J = Fcv_util.Telemetry.Json
module Noise = Fcv_datagen.Noise

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let repeats = 3

let best_ms f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t0 = Fcv_util.Timer.now () in
    let r = f () in
    let ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
    if ms < !best then best := ms;
    result := Some r
  done;
  (Option.get !result, !best)

(* -- the row-scan ground truth ------------------------------------------- *)

(* Distinct (lhs, rhs) projection pairs, grouped by lhs: with n
   distinct rhs values in a group, the FD's hypothesis holds on n²
   (lhs, rhs, rhs') bindings and its body fails on the n(n−1) with
   rhs ≠ rhs'. *)
let recount table ~lhs_col ~rhs_col =
  let pairs = Hashtbl.create 1024 in
  Fcv_relation.Table.iter table (fun row ->
      Hashtbl.replace pairs (row.(lhs_col), row.(rhs_col)) ());
  let group_sizes = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (l, _) () ->
      Hashtbl.replace group_sizes l (1 + Option.value ~default:0 (Hashtbl.find_opt group_sizes l)))
    pairs;
  Hashtbl.fold (fun _ n (v, t) -> (v + (n * (n - 1)), t + (n * n))) group_sizes (0, 0)

(* -- one cell: one FD at one noise level ---------------------------------- *)

type cell = {
  noise : float;
  name : string;
  rhs_col : int;
  hard_ms : float;
  soft_ms : float;
  generic_ms : float;
  recount_ms : float;
  violations : int;
  bindings : int;
  ratio : float;
  soft_outcome : C.outcome;
}

let threshold = 0.999

let run_cell ~noise ~table ~index (name, src) ~rhs_col =
  let spec = Core.Fol_parser.spec_of_string (Printf.sprintf "holds >= %g . %s" threshold src) in
  let hard, hard_ms = best_ms (fun () -> C.check index spec.F.formula) in
  let soft, soft_ms = best_ms (fun () -> C.check_spec index spec) in
  (* the same soft check with the FD fast path ablated: what the
     violation-BDD route costs, for the record *)
  let _, generic_ms =
    best_ms (fun () ->
        C.check_spec
          ~pipeline:{ C.default_pipeline with C.use_fd_fast_path = false }
          index spec)
  in
  let (rv, rt), recount_ms = best_ms (fun () -> recount table ~lhs_col:0 ~rhs_col) in
  let rate =
    match soft.C.rate with
    | Some r -> r
    | None ->
      fail "%s noise=%g: soft check reported no rate" name noise;
      { C.violations = N.zero; total = N.zero; ratio = 0.; threshold }
  in
  (* exactness: bit for bit against the row scan *)
  if N.to_int_opt rate.C.violations <> Some rv then
    fail "%s noise=%g: rate violations %s, recount %d" name noise
      (N.to_string rate.C.violations) rv;
  if N.to_int_opt rate.C.total <> Some rt then
    fail "%s noise=%g: rate bindings %s, recount %d" name noise
      (N.to_string rate.C.total) rt;
  let expected_ratio = if rt = 0 then 0. else float_of_int rv /. float_of_int rt in
  if Int64.bits_of_float rate.C.ratio <> Int64.bits_of_float expected_ratio then
    fail "%s noise=%g: ratio %.17g, recount %.17g" name noise rate.C.ratio expected_ratio;
  (* verdict consistency *)
  let expected_soft =
    if C.clears ~threshold ~violations:(N.of_int rv) ~total:(N.of_int rt) then C.Satisfied
    else C.Violated
  in
  if soft.C.outcome <> expected_soft then
    fail "%s noise=%g: soft verdict disagrees with the exact recount comparison" name
      noise;
  if (hard.C.outcome = C.Violated) <> (rv > 0) then
    fail "%s noise=%g: hard verdict disagrees with the recount" name noise;
  if noise = 0. && rv <> 0 then fail "%s: clean data recounted a nonzero rate" name;
  Printf.printf
    "  %-26s noise=%-6g hard %6.2f ms  soft %6.2f ms (generic %6.2f)  recount %6.2f ms  \
     rate %d/%d = %.5f  [%s]\n%!"
    name noise hard_ms soft_ms generic_ms recount_ms rv rt expected_ratio
    (match soft.C.outcome with C.Satisfied -> "satisfied" | C.Violated -> "violated");
  {
    noise;
    name;
    rhs_col;
    hard_ms;
    soft_ms;
    generic_ms;
    recount_ms;
    violations = rv;
    bindings = rt;
    ratio = expected_ratio;
    soft_outcome = soft.C.outcome;
  }

let run_noise_level noise =
  let rng = Fcv_util.Rng.create 2007 in
  let cfg = { Noise.default with Noise.loc_noise = noise; unit_noise = noise } in
  let db, table = Noise.generate rng cfg in
  let specs =
    List.map (fun (_, src) -> Core.Fol_parser.of_string src) Noise.fd_constraints
  in
  let index = Core.Index.create db in
  C.ensure_indices index specs;
  List.map2
    (fun fd rhs_col -> run_cell ~noise ~table ~index fd ~rhs_col)
    Noise.fd_constraints [ 1; 2 ]

(* -- baseline gate --------------------------------------------------------- *)

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  J.of_string s

let gate_against_baseline cells =
  let path = "bench/baseline_approx.json" in
  if not (Sys.file_exists path) then
    Printf.printf "(no %s — skipping the latency-ratio gate)\n%!" path
  else
    let limit =
      match J.member "max_soft_over_hard" (read_json path) with
      | Some (T.Float x) -> Some x
      | Some (T.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    match limit with
    | None -> fail "malformed %s: no max_soft_over_hard" path
    | Some limit ->
      List.iter
        (fun c ->
          (* sub-millisecond hard checks measure timer noise, not the
             engine; the ratio is only meaningful on real work *)
          if c.hard_ms >= 1.0 then begin
            let ratio = c.soft_ms /. c.hard_ms in
            if ratio > limit then
              fail "%s noise=%g: soft check %.1fx slower than hard (limit %.1fx)" c.name
                c.noise ratio limit
          end)
        cells

(* -- entry ------------------------------------------------------------------ *)

let cell_json c =
  T.Obj
    [
      ("name", T.String c.name);
      ("noise", T.Float c.noise);
      ("hard_ms", T.Float c.hard_ms);
      ("soft_ms", T.Float c.soft_ms);
      ("generic_ms", T.Float c.generic_ms);
      ("recount_ms", T.Float c.recount_ms);
      ("violations", T.Int c.violations);
      ("bindings", T.Int c.bindings);
      ("rate", T.Float c.ratio);
      ( "soft_outcome",
        T.String (match c.soft_outcome with C.Satisfied -> "satisfied" | C.Violated -> "violated")
      );
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_approx.json" in
  Printf.printf
    "approximate constraints — soft (p=%g) vs hard checks on the noise family (%d rows)\n%!"
    threshold Noise.default.Noise.rows;
  let cells = List.concat_map run_noise_level [ 0.0; 0.001; 0.01; 0.05 ] in
  gate_against_baseline cells;
  let doc =
    T.Obj
      [
        ("bench", T.String "approx");
        ("env", T.Obj [ ("ocaml", T.String Sys.ocaml_version) ]);
        ("threshold", T.Float threshold);
        ("rows", T.Int Noise.default.Noise.rows);
        ("repeats", T.Int repeats);
        ("cells", T.List (List.map cell_json cells));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if !failures > 0 then begin
    Printf.printf "%d gate failure%s\n%!" !failures (if !failures = 1 then "" else "s");
    exit 1
  end
