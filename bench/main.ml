(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (Section 5).  See DESIGN.md for the experiment
   index and EXPERIMENTS.md for paper-vs-measured numbers.

     dune exec bench/main.exe                 # everything, quick scale
     dune exec bench/main.exe -- fig2a table1 # a subset
     FCV_BENCH_SCALE=full dune exec bench/main.exe   # paper scale

   Additionally `micro` runs Bechamel micro-benchmarks of the BDD
   kernel primitives (one Test.make per operation). *)

let registry : (string * string * (unit -> unit)) list =
  [
    ("fig2a", "effect of variable ordering (per family)", Fig_ordering.fig2a);
    ("fig2b", "ranking orderings by MaxInf-Gain", Fig_ordering.fig2b);
    ("fig2c", "ranking orderings by Prob-Converge", Fig_ordering.fig2c);
    ("fig3a", "histogram of alpha (MaxInf-Gain vs optimal)", Fig_ordering.fig3a);
    ("fig3b", "histogram of beta (Prob-Converge vs optimal)", Fig_ordering.fig3b);
    ("fig3c", "accuracy comparison CDF", Fig_ordering.fig3c);
    ("fig4a", "BDD construction time", Fig_index.fig4a);
    ("fig4b", "BDD update time", Fig_index.fig4b);
    ("fig4c", "BDD size", Fig_index.fig4c);
    ("fig5a", "membership constraints, BDD vs SQL", Fig_check.fig5a);
    ("fig5b", "implication constraint, BDD vs SQL", Fig_check.fig5b);
    ("fig6a", "equi-join rewrite", Fig_rewrite.fig6a);
    ("fig6b", "existential pull-up rewrite", Fig_rewrite.fig6b);
    ("fig6c", "universal push-down rewrite", Fig_rewrite.fig6c);
    ("table1", "variable-ordering gain on Q1-Q5", Tables.table1);
    ("table2", "node-budget fill time", Tables.table2);
    ("ablations", "checker pipeline ablation study", Ablations.run);
    ("micro", "Bechamel micro-benchmarks of kernel primitives", Micro.all);
  ]

(* FCV_TELEMETRY=PREFIX records telemetry around each experiment and
   writes PREFIX.<name>.jsonl (events + counter/histogram summary). *)
let telemetry_prefix = Sys.getenv_opt "FCV_TELEMETRY"

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) registry
  in
  Printf.printf "fcv experiment harness — scale: %s\n"
    (match Bench_util.scale with
    | Bench_util.Quick -> "quick (set FCV_BENCH_SCALE=full for paper scale)"
    | Bench_util.Full -> "full");
  let module T = Fcv_util.Telemetry in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) registry with
      | Some (_, _, run) ->
        if telemetry_prefix <> None then begin
          T.reset ();
          T.enable ()
        end;
        let t0 = Fcv_util.Timer.now () in
        run ();
        Printf.printf "\n[%s done in %.1f s]\n" name (Fcv_util.Timer.now () -. t0);
        Option.iter
          (fun prefix ->
            let path = Printf.sprintf "%s.%s.jsonl" prefix name in
            T.write_jsonl path;
            T.disable ();
            Printf.printf "[telemetry: %s]\n" path)
          telemetry_prefix
      | None ->
        Printf.eprintf "unknown experiment %s; known:\n" name;
        List.iter (fun (n, d, _) -> Printf.eprintf "  %-8s %s\n" n d) registry;
        exit 2)
    requested
