(* Repair-planner benchmark: latency and deletion-set size as the
   planted violation rate grows, plus exact-vs-greedy repair quality.

     dune exec bench/repair.exe [-- OUT.json]

   Two scenarios:

   - university (greedy): the paper's running example with [rate] of
     the student body planted as curriculum violators, repaired under
     the curriculum policy and the takes→course referential rule.
     Greedy must delete exactly the violating student rows — one per
     materialised violator, nothing else — and report a complete plan.
   - retail FD (exact vs greedy): the retail products table (brand →
     category holds by construction) with [conflicts] planted
     conflicting rows, repaired under the FD.  The exact planner is on
     its tractable turf (single FD), so its plan is the minimum; the
     gate bounds greedy's cardinality against it.

   The gate (exit 1, fatal under FCV_CI=1 via bench/ci.sh) is
   quality-only — no latency floors, absolute numbers across machines
   are meaningless: every plan complete, greedy exactly the planted
   violators on university, exact <= greedy on retail, and the
   greedy/exact ratio within bench/baseline_repair.json's
   [max_quality_ratio]. *)

module R = Fcv_relation
module Rp = Fcv_repair.Repair
module T = Fcv_util.Telemetry
module J = Fcv_util.Telemetry.Json
module U = Fcv_datagen.University
module Retail = Fcv_datagen.Retail

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

(* -- university: greedy vs planted violation rate -------------------------- *)

let curriculum = "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"

type univ_cell = {
  rate : float;
  planted : int;
  witnesses : int;  (** materialised violators *)
  deletions : int;
  ms : float;
  complete : bool;
}

let run_university rate =
  let students = 400 in
  let cfg =
    {
      U.students;
      courses = 40;
      departments = 4;  (* CS well populated: every planted violator materialises *)
      areas = 5;
      takes_per_student = 3;
      violators = int_of_float (rate *. float_of_int students);
    }
  in
  let db, _, _, _ = U.generate (Fcv_util.Rng.create 2007) cfg in
  let formulas = List.map Core.Fol_parser.of_string [ curriculum; referential ] in
  let plan = Rp.plan ~strategy:Rp.Greedy db formulas in
  let cell =
    {
      rate;
      planted = cfg.U.violators;
      witnesses = int_of_float plan.Rp.witnesses_before;
      deletions = List.length plan.Rp.deletions;
      ms = plan.Rp.elapsed_ms;
      complete = plan.Rp.complete;
    }
  in
  Printf.printf
    "  university rate=%.2f  planted %3d  witnesses %3d  deletions %3d  %7.1f ms%s\n%!"
    rate cell.planted cell.witnesses cell.deletions cell.ms
    (if cell.complete then "" else "  INCOMPLETE");
  if not cell.complete then fail "university rate=%.2f: plan incomplete" rate;
  if cell.deletions <> cell.witnesses then
    fail "university rate=%.2f: %d deletions for %d violators (greedy should delete \
          exactly the violating student rows)"
      rate cell.deletions cell.witnesses;
  cell

(* -- retail: exact vs greedy on the brand→category FD ---------------------- *)

let products_fd = "forall b, c1, c2 . products(_, c1, b) and products(_, c2, b) -> c1 = c2"

type retail_cell = {
  conflicts : int;
  exact_deletions : int;
  greedy_deletions : int;
  ratio : float;
  exact_ms : float;
  greedy_ms : float;
}

(* Plant [conflicts] FD violations: for each of the first [conflicts]
   populated brands, one extra product row whose category disagrees
   with the brand's established one — so the minimum repair is exactly
   one deletion per conflicted brand. *)
let plant_conflicts rng retail conflicts =
  let products = retail.Retail.products in
  let seen = Hashtbl.create 64 in
  R.Table.iter products (fun row ->
      if not (Hashtbl.mem seen row.(2)) then Hashtbl.add seen row.(2) row.(1));
  let planted = ref 0 in
  Hashtbl.iter
    (fun brand cat ->
      if !planted < conflicts then begin
        incr planted;
        R.Table.insert_coded products
          [|
            Fcv_util.Rng.int rng (R.Dict.size (R.Table.dict products 0));
            (cat + 1) mod Retail.n_category;
            brand;
          |]
      end)
    seen;
  !planted

let run_retail conflicts =
  let rng = Fcv_util.Rng.create 41 in
  let retail =
    Retail.generate rng { Retail.default with Retail.customers = 300; products = 400; orders = 1_000 }
  in
  let planted = plant_conflicts rng retail conflicts in
  let fd = [ Core.Fol_parser.of_string products_fd ] in
  let exact = Rp.plan ~strategy:Rp.Exact retail.Retail.db fd in
  let greedy = Rp.plan ~strategy:Rp.Greedy retail.Retail.db fd in
  let ne = List.length exact.Rp.deletions and ng = List.length greedy.Rp.deletions in
  let cell =
    {
      conflicts = planted;
      exact_deletions = ne;
      greedy_deletions = ng;
      ratio = float_of_int ng /. float_of_int (max 1 ne);
      exact_ms = exact.Rp.elapsed_ms;
      greedy_ms = greedy.Rp.elapsed_ms;
    }
  in
  Printf.printf
    "  retail conflicts=%3d  exact %3d (%6.1f ms)  greedy %3d (%6.1f ms)  ratio %.2f\n%!"
    planted ne cell.exact_ms ng cell.greedy_ms cell.ratio;
  if not exact.Rp.complete then fail "retail conflicts=%d: exact plan incomplete" planted;
  if not greedy.Rp.complete then fail "retail conflicts=%d: greedy plan incomplete" planted;
  if ne <> planted then
    fail "retail conflicts=%d: exact deleted %d rows, the minimum is one per conflict"
      planted ne;
  if ng < ne then
    fail "retail conflicts=%d: greedy (%d) beat the provable minimum (%d) — exact is broken"
      planted ng ne;
  cell

(* -- baseline gate ---------------------------------------------------------- *)

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  J.of_string s

let gate_against_baseline retail_cells =
  let path = "bench/baseline_repair.json" in
  if not (Sys.file_exists path) then
    Printf.printf "(no %s — skipping the quality-ratio gate)\n%!" path
  else
    let limit =
      match J.member "max_quality_ratio" (read_json path) with
      | Some (T.Float x) -> Some x
      | Some (T.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    match limit with
    | None -> fail "malformed %s: no max_quality_ratio" path
    | Some limit ->
      List.iter
        (fun c ->
          if c.ratio > limit then
            fail "retail conflicts=%d: greedy/exact ratio %.2f over the %.2f limit"
              c.conflicts c.ratio limit)
        retail_cells

(* -- entry ------------------------------------------------------------------ *)

let univ_json c =
  T.Obj
    [
      ("rate", T.Float c.rate);
      ("planted", T.Int c.planted);
      ("witnesses", T.Int c.witnesses);
      ("deletions", T.Int c.deletions);
      ("ms", T.Float c.ms);
      ("complete", T.Bool c.complete);
    ]

let retail_json c =
  T.Obj
    [
      ("conflicts", T.Int c.conflicts);
      ("exact_deletions", T.Int c.exact_deletions);
      ("greedy_deletions", T.Int c.greedy_deletions);
      ("ratio", T.Float c.ratio);
      ("exact_ms", T.Float c.exact_ms);
      ("greedy_ms", T.Float c.greedy_ms);
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_repair.json" in
  Printf.printf "repair planner — greedy on university, exact vs greedy on retail FD\n%!";
  let univ = List.map run_university [ 0.0; 0.01; 0.05; 0.10; 0.20 ] in
  let retail = List.map run_retail [ 4; 16; 48 ] in
  gate_against_baseline retail;
  let doc =
    T.Obj
      [
        ("bench", T.String "repair");
        ("env", T.Obj [ ("ocaml", T.String Sys.ocaml_version) ]);
        ("university", T.List (List.map univ_json univ));
        ("retail", T.List (List.map retail_json retail));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if !failures > 0 then begin
    Printf.printf "%d gate failure%s\n%!" !failures (if !failures = 1 then "" else "s");
    exit 1
  end
