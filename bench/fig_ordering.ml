(** Experiments E1–E6: the variable-ordering study (Figs. 2 and 3).

    Four families of 5-attribute relations (1-PROD, 4-PROD, 8-PROD,
    RANDOM); for each relation all 120 orderings are encoded
    exhaustively, giving the true size ranking against which the
    MaxInf-Gain and Prob-Converge predictions are scored. *)

module R = Fcv_relation
module S = Fcv_datagen.Synth
open Bench_util

let attrs = 5
let dom = 100

let families = [ S.Prod 1; S.Prod 4; S.Prod 8; S.Random ]

type relation_study = {
  table : R.Table.t;
  ranked : (int array * int) list;  (** all orderings, ascending size *)
  maxinf_order : int array;
  probconv_order : int array;
}

let study_relation seed family =
  let rng = Fcv_util.Rng.create seed in
  let _, table = S.table rng ~name:"r" ~attrs ~dom ~rows:synth_rows ~family in
  {
    table;
    ranked = Core.Ordering.exhaustive table;
    maxinf_order = Core.Ordering.max_inf_gain table;
    probconv_order = Core.Ordering.prob_converge table;
  }

(* memoised per-family studies, shared by every figure below *)
let cache : (string, relation_study list) Hashtbl.t = Hashtbl.create 8

let studies family =
  let key = S.family_name family in
  match Hashtbl.find_opt cache key with
  | Some s -> s
  | None ->
    let s =
      List.init relations_per_family (fun i -> study_relation ((1000 * i) + Hashtbl.hash key) family)
    in
    Hashtbl.replace cache key s;
    s

let size_of_order study order =
  let rec go = function
    | [] -> invalid_arg "size_of_order"
    | (o, s) :: rest -> if o = order then s else go rest
  in
  go study.ranked

let optimal_size study = snd (List.hd study.ranked)

(* -- Fig 2(a): effect of variable ordering ---------------------------------- *)

let fig2a () =
  section "Fig 2(a): BDD size per variable ordering (best to worst), per family";
  let series =
    List.map
      (fun family ->
        let ss = studies family in
        let nperm = List.length (List.hd ss).ranked in
        let avg_at_rank r =
          mean (List.map (fun st -> float_of_int (snd (List.nth st.ranked r))) ss)
        in
        (S.family_name family, List.init nperm avg_at_rank))
      families
  in
  row "%-6s" "rank";
  List.iter (fun (name, _) -> row " %12s" name) series;
  row "\n";
  let nperm = List.length (snd (List.hd series)) in
  for r = 0 to nperm - 1 do
    if r mod 6 = 0 || r = nperm - 1 then begin
      row "%-6d" r;
      List.iter (fun (_, sizes) -> row " %12.0f" (List.nth sizes r)) series;
      row "\n"
    end
  done;
  subsection "worst/best compaction ratio per family";
  List.iter
    (fun (name, sizes) ->
      let best = List.hd sizes and worst = List.nth sizes (nperm - 1) in
      row "  %-8s %6.2f\n" name (worst /. best))
    series;
  paper_note "ratios: 1-PROD 71.29, 4-PROD 6.29, 8-PROD 2.26, RAND 1.02"

(* -- Fig 2(b)/(c): heuristic ranking vs true ranking -------------------------- *)

let ranking_figure name score_fn =
  let st = List.hd (studies (S.Prod 1)) in
  let cache = Hashtbl.create 64 in
  let scored =
    List.map
      (fun (o, size) ->
        (* area under the heuristic's per-prefix measure: how slowly
           the greedy criterion is satisfied along the whole ordering *)
        let area = List.fold_left ( +. ) 0. (score_fn ~cache st.table o) in
        (area, size, o))
      st.ranked
  in
  let by_score = List.sort (fun (a, _, _) (b, _, _) -> compare a b) scored in
  let true_sizes = List.map snd st.ranked in
  let predicted_sizes = List.map (fun (_, s, _) -> s) by_score in
  subsection (name ^ " ranking of the 120 orderings (1-PROD)");
  row "%-6s %14s %14s\n" "rank" "true-ranked" (name ^ "-ranked");
  List.iteri
    (fun i (t, p) -> if i mod 6 = 0 || i = 119 then row "%-6d %14d %14d\n" i t p)
    (List.combine true_sizes predicted_sizes);
  (* how deep do the rankings coincide from the top, judged by the
     achieved SIZE (many orderings tie at the optimum)? *)
  let rec agree i = function
    | t :: ts, p :: ps when t = p -> agree (i + 1) (ts, ps)
    | _ -> i
  in
  let top = agree 0 (true_sizes, predicted_sizes) in
  let rank_corr =
    spearman
      (List.map float_of_int true_sizes)
      (List.map float_of_int predicted_sizes)
  in
  row "  top-of-ranking agreement: first %d orderings coincide\n" top;
  row "  Spearman(true sizes, sizes in predicted rank order) = %.3f\n" rank_corr

let fig2b () =
  section "Fig 2(b): ranking variable orderings by MaxInf-Gain";
  ranking_figure "MaxInf-Gain" (fun ~cache t o -> Core.Ordering.score_max_inf_gain ~cache t o);
  paper_note "only the top ~2 MaxInf-Gain-ranked orderings match the true ranking"

let fig2c () =
  section "Fig 2(c): ranking variable orderings by Prob-Converge";
  ranking_figure "Prob-Converge" (fun ~cache t o -> Core.Ordering.score_prob_converge ~cache t o);
  paper_note "the top ~10 Prob-Converge-ranked orderings coincide with the true ranking"

(* -- Fig 3: accuracy of the chosen ordering ------------------------------------ *)

let ratios family =
  List.map
    (fun st ->
      let opt = float_of_int (optimal_size st) in
      ( float_of_int (size_of_order st st.maxinf_order) /. opt,
        float_of_int (size_of_order st st.probconv_order) /. opt ))
    (studies family)

let histogram_figure title pick =
  section title;
  List.iter
    (fun family ->
      let rs = List.map pick (ratios family) in
      let counts = histogram ~lo:0.8 ~hi:2.5 ~bins:17 rs in
      let worst = List.fold_left max 1. rs in
      row "  %-8s worst = %5.2f   bins[0.8..2.5 step 0.1, last = >2.5]:" (S.family_name family) worst;
      Array.iter (fun c -> row " %d" c) counts;
      row "\n")
    families

let fig3a () =
  histogram_figure "Fig 3(a): histogram of alpha = size(MaxInf-Gain) / size(optimal)" fst;
  paper_note "MaxInf-Gain exceeds 2.5x optimal on several 1-PROD/4-PROD runs"

let fig3b () =
  histogram_figure "Fig 3(b): histogram of beta = size(Prob-Converge) / size(optimal)" snd;
  paper_note "beta < 1.5 everywhere: Prob-Converge is near-optimal"

let fig3c () =
  section "Fig 3(c): accuracy comparison (fraction of runs within ratio x of optimal)";
  let grid = List.init 16 (fun i -> 1.0 +. (0.1 *. float_of_int i)) in
  List.iter
    (fun family ->
      let rs = ratios family in
      let n = float_of_int (List.length rs) in
      let cdf pick x =
        float_of_int (List.length (List.filter (fun r -> pick r <= x) rs)) /. n
      in
      subsection (S.family_name family);
      row "%-8s %14s %14s\n" "ratio" "MaxInf-Gain" "Prob-Converge";
      List.iter (fun x -> row "%-8.2f %14.2f %14.2f\n" x (cdf fst x) (cdf snd x)) grid)
    families;
  paper_note "Prob-Converge dominates wherever product structure exists"

let all () =
  fig2a ();
  fig2b ();
  fig2c ();
  fig3a ();
  fig3b ();
  fig3c ()
