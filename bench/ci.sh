#!/bin/sh
# CI gate: format check, full build, the test suite with a pinned
# QCheck seed, a daemon smoke test, a 200-schedule fault-injection
# sweep (fcv sim), the parallel-validation scaling benchmark, the
# planner-vs-legacy benchmark with its verdict-exactness and never-
# slower gate, the memory-lifecycle churn benchmark with its peak-node
# bound, the
# sharded serving-tier benchmark (pipelined clients + group commit)
# with its verdict-exactness and throughput-floor gate, the repair-
# planner benchmark with its quality gate (complete plans, exact
# minimality, greedy/exact ratio vs bench/baseline_repair.json), the
# approximate-constraint benchmark with its exact-rate gate
# (bench/baseline_approx.json), and the perf-regression gate against
# bench/baseline.json.
#
# FCV_CI=1 hardens the gate for CI runners: a missing ocamlformat, a
# perf regression, a churn memory-bound violation and a serving-tier
# gate failure become failures instead of skips/warnings.  On failure
# the workspace keeps _ci/ (smoke-test state dir) and every
# BENCH_*.json (parallel, churn, serve, repair) for artifact upload.
set -eu

cd "$(dirname "$0")/.."

: "${FCV_CI:=0}"

# Pinned seed: property tests (including the 3-way differential
# oracle and the parallel-vs-sequential differential) replay the same
# cases in CI; override by exporting QCHECK_SEED before calling.
: "${QCHECK_SEED:=20070415}"
export QCHECK_SEED

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt (ocamlformat $(ocamlformat --version))"
  dune build @fmt
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: FCV_CI=1 but ocamlformat is not installed (CI must install the" >&2
  echo "      version pinned in .ocamlformat so the format check actually runs)" >&2
  exit 1
else
  echo "== skipping format check (ocamlformat not installed; fatal under FCV_CI=1)"
fi

echo "== dune build"
dune build

echo "== dune runtest (QCHECK_SEED=$QCHECK_SEED)"
dune runtest --force

echo "== daemon smoke test (fcv serve / fcv client)"
FCV=./_build/default/bin/fcv.exe
# Keep the smoke dir inside the workspace: on failure CI uploads it
# (WAL + snapshot generations) as a debugging artifact.
SMOKE="$PWD/_ci/smoke"
rm -rf "$SMOKE"
mkdir -p "$SMOKE"
SERVE_PID=""
SMOKE_DONE=0
cleanup() {
  # capture the in-flight exit status FIRST: every command below must
  # not clobber what we propagate
  rc=$?
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  # only discard the state dir after a fully successful run
  if [ "$rc" = "0" ] && [ "$SMOKE_DONE" = "1" ]; then
    rm -rf "$PWD/_ci"
  else
    echo "(keeping $SMOKE for inspection)" >&2
  fi
  exit "$rc"
}
trap cleanup EXIT INT TERM

"$FCV" gen university -o "$SMOKE/data" -n 200 >/dev/null

SOCK="$SMOKE/fcv.sock"
"$FCV" serve -d "$SMOKE/data" --sock "$SOCK" --state "$SMOKE/state" \
  --snapshot-every 500 -j 2 &
SERVE_PID=$!

# wait for the daemon to bind its socket
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "daemon did not come up" >&2
    exit 1
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "daemon exited before binding $SOCK" >&2
    exit 1
  fi
  sleep 0.1
done

"$FCV" client --sock "$SOCK" ping >/dev/null
"$FCV" client --sock "$SOCK" register \
  'forall s, c . takes(s, c) -> (exists a . course(c, a))' >/dev/null

# 1k interleaved updates (net zero: every insert is deleted again),
# then an in-stream validation
{
  i=0
  while [ "$i" -lt 500 ]; do
    echo "insert takes,$((i % 200)),$((i % 100))"
    echo "delete takes,$((i % 200)),$((i % 100))"
    i=$((i + 1))
  done
  echo "validate"
} >"$SMOKE/updates.txt"
"$FCV" client --sock "$SOCK" updates "$SMOKE/updates.txt" >/dev/null 2>&1

"$FCV" client --sock "$SOCK" validate >/dev/null
"$FCV" client --sock "$SOCK" stats >/dev/null
"$FCV" client --sock "$SOCK" shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
SMOKE_DONE=1
echo "daemon smoke test passed"

echo "== fault-injection sim (200 schedules, fixed seed; fatal under FCV_CI=1)"
if "$FCV" sim --seed 1 --schedules 200; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: fcv sim found a durability violation (repro line above)" >&2
  exit 1
else
  echo "WARNING: fcv sim found a durability violation (fatal under FCV_CI=1)" >&2
fi

echo "== parallel-validation scaling benchmark"
# Wrapped like the other gates so the exit code propagates through the
# cleanup trap deliberately: a bench failure is fatal under FCV_CI=1
# and a loud warning locally, and either way the BENCH_*.json written
# so far survives for artifact upload.
if dune exec bench/parallel.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: parallel scaling benchmark failed (verdict drift across j, or a crash" >&2
  echo "      in the pooled checker — see output above)" >&2
  exit 1
else
  echo "WARNING: parallel scaling benchmark failed (fatal under FCV_CI=1)" >&2
fi

# Surface the j-scaling curve on the Actions run page when GitHub
# gives us a step summary to append to.
if [ -n "${GITHUB_STEP_SUMMARY:-}" ] && [ -f BENCH_parallel.json ]; then
  dune exec bench/scaling_table.exe >>"$GITHUB_STEP_SUMMARY" || true
fi

echo "== planner-vs-legacy benchmark (verdict exactness + <=10% slack gate, fatal under FCV_CI=1)"
if dune exec bench/plan.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: planner gate (verdict drift between planned and legacy validation, the" >&2
  echo "      planner >10% slower than legacy on a workload, or the pathological" >&2
  echo "      budget-trip plant never tripped — see BENCH_plan.json)" >&2
  exit 1
else
  echo "WARNING: planner gate failed (fatal under FCV_CI=1; see BENCH_plan.json)" >&2
fi

echo "== memory-lifecycle churn benchmark (peak-node bound fatal under FCV_CI=1)"
if dune exec bench/churn.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: churn gate violated its memory bounds (see BENCH_churn.json)" >&2
  exit 1
else
  echo "WARNING: churn gate violated its memory bounds (fatal under FCV_CI=1)" >&2
fi

echo "== sharded serving-tier benchmark (pipelined clients up to N=8, shards up to 4;"
echo "   verdict exactness + throughput floor vs bench/baseline_serve.json, fatal under FCV_CI=1)"
if dune exec bench/serve.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: serving-tier gate (non-exact verdict, reply reordering, or a throughput" >&2
  echo "      regression vs bench/baseline_serve.json — see BENCH_serve.json)" >&2
  exit 1
else
  echo "WARNING: serving-tier gate failed (fatal under FCV_CI=1; see BENCH_serve.json)" >&2
fi

echo "== repair-planner benchmark (quality gate: complete plans, exact minimality,"
echo "   greedy/exact ratio vs bench/baseline_repair.json, fatal under FCV_CI=1)"
if dune exec bench/repair.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: repair gate (incomplete plan, non-minimum exact repair, or greedy" >&2
  echo "      quality over the baseline ratio — see BENCH_repair.json)" >&2
  exit 1
else
  echo "WARNING: repair gate failed (fatal under FCV_CI=1; see BENCH_repair.json)" >&2
fi

echo "== approximate-constraint benchmark (exact-rate gate vs row-scan recount,"
echo "   soft/hard latency ratio vs bench/baseline_approx.json, fatal under FCV_CI=1)"
if dune exec bench/approx.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: approx gate (a soft rate diverged from the independent recount, a" >&2
  echo "      threshold verdict flipped, or soft checks exceeded the baseline" >&2
  echo "      soft/hard latency ratio — see BENCH_approx.json)" >&2
  exit 1
else
  echo "WARNING: approx gate failed (fatal under FCV_CI=1; see BENCH_approx.json)" >&2
fi

echo "== perf-regression gate (tolerance 25%, fatal under FCV_CI=1)"
if dune exec bench/check_regression.exe; then
  :
elif [ "$FCV_CI" = "1" ]; then
  echo "FAIL: perf regression against bench/baseline.json" >&2
  exit 1
else
  echo "WARNING: perf regression against bench/baseline.json (fatal under FCV_CI=1)" >&2
fi

echo "CI gate passed"
