#!/bin/sh
# CI gate: format check (when ocamlformat is available), full build,
# and the test suite with a pinned QCheck seed so the differential
# oracle (test/test_differential.ml) is reproducible across runs.
set -eu

cd "$(dirname "$0")/.."

# Pinned seed: property tests (including the 3-way differential
# oracle) replay the same cases in CI; override by exporting
# QCHECK_SEED before calling.
: "${QCHECK_SEED:=20070415}"
export QCHECK_SEED

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest (QCHECK_SEED=$QCHECK_SEED)"
dune runtest --force

echo "== daemon smoke test (fcv serve / fcv client)"
FCV=./_build/default/bin/fcv.exe
SMOKE=$(mktemp -d /tmp/fcv-smoke.XXXXXX)
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$SMOKE"
}
trap cleanup EXIT INT TERM

"$FCV" gen university -o "$SMOKE/data" -n 200 >/dev/null

SOCK="$SMOKE/fcv.sock"
"$FCV" serve -d "$SMOKE/data" --sock "$SOCK" --state "$SMOKE/state" \
  --snapshot-every 500 &
SERVE_PID=$!

# wait for the daemon to bind its socket
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "daemon did not come up" >&2
    exit 1
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "daemon exited before binding $SOCK" >&2
    exit 1
  fi
  sleep 0.1
done

"$FCV" client --sock "$SOCK" ping >/dev/null
"$FCV" client --sock "$SOCK" register \
  'forall s, c . takes(s, c) -> (exists a . course(c, a))' >/dev/null

# 1k interleaved updates (net zero: every insert is deleted again),
# then an in-stream validation
{
  i=0
  while [ "$i" -lt 500 ]; do
    echo "insert takes,$((i % 200)),$((i % 100))"
    echo "delete takes,$((i % 200)),$((i % 100))"
    i=$((i + 1))
  done
  echo "validate"
} >"$SMOKE/updates.txt"
"$FCV" client --sock "$SOCK" updates "$SMOKE/updates.txt" >/dev/null 2>&1

"$FCV" client --sock "$SOCK" validate >/dev/null
"$FCV" client --sock "$SOCK" stats >/dev/null
"$FCV" client --sock "$SOCK" shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "daemon smoke test passed"

echo "CI gate passed"
