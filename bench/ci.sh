#!/bin/sh
# CI gate: format check (when ocamlformat is available), full build,
# and the test suite with a pinned QCheck seed so the differential
# oracle (test/test_differential.ml) is reproducible across runs.
set -eu

cd "$(dirname "$0")/.."

# Pinned seed: property tests (including the 3-way differential
# oracle) replay the same cases in CI; override by exporting
# QCHECK_SEED before calling.
: "${QCHECK_SEED:=20070415}"
export QCHECK_SEED

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest (QCHECK_SEED=$QCHECK_SEED)"
dune runtest --force

echo "CI gate passed"
