(* Serving-tier benchmark: pipelined clients against an in-process
   sharded daemon with group commit.

     dune exec bench/serve.exe [-- OUT.json]

   For every cell of clients ∈ {1, 4, 8} × shards ∈ {1, 4}, a durable
   (fsync-on-group-commit) daemon is started over a fresh state
   directory with the referential constraint registered, and each
   client thread streams invariant-preserving [takes] inserts — fresh
   student ids against courses the base data already holds, so every
   verdict must stay clean — in pipelined batches of 20 over one
   connection, following each batch with a timed [validate].  Writes
   BENCH_serve.json: mutations/sec plus p50/p99 validate latency per
   cell.

   The gate (exit 1, fatal under FCV_CI=1 via bench/ci.sh):
   - verdict exactness: every in-stream validate must report 0
     violations, a planted dangling [takes] row at the end must
     report exactly 1, and its deletion 0 again — on every cell;
   - replies must come back in pipelined request order, one per
     request;
   - throughput may not fall below the committed floors in
     bench/baseline_serve.json (deliberately conservative — an
     order-of-magnitude cushion for slow runners; absolute numbers
     across machines are otherwise meaningless). *)

module P = Fcv_server.Protocol
module S = Fcv_server.Server
module Tier = Fcv_server.Tier
module T = Fcv_util.Telemetry
module J = Fcv_util.Telemetry.Json
module U = Fcv_datagen.University

let batches = 12
let batch = 20
let courses = 40
let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"

let make_base () =
  let db, _, _, _ =
    U.generate (Fcv_util.Rng.create 42)
      { U.default with U.students = 200; courses; takes_per_student = 2 }
  in
  db

let tmpdir () =
  let path = Filename.temp_file "fcvbench" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

(* -- raw pipelined client -------------------------------------------------- *)

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let send_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Read until [want] newline-terminated replies have arrived. *)
let read_replies fd buf ~want =
  let bytes = Bytes.create 65536 in
  let lines () =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "")
  in
  let deadline = Unix.gettimeofday () +. 30. in
  while List.length (lines ()) < want && Unix.gettimeofday () < deadline do
    let n = Unix.read fd bytes 0 (Bytes.length bytes) in
    if n = 0 then failwith "server closed the connection mid-stream";
    Buffer.add_subbytes buf bytes 0 n
  done;
  let got = lines () in
  Buffer.clear buf;
  if List.length got <> want then
    failwith (Printf.sprintf "expected %d replies, got %d" want (List.length got));
  List.map P.parse_response got

let violated_of body =
  match J.member "violated" body with Some (T.Int n) -> n | _ -> -1

(* One client: [batches] pipelined batches of [batch] clean inserts,
   each followed by a timed validate that must report 0 violations.
   Returns the validate latencies (seconds). *)
let client_loop ~sock ~client =
  let fd = connect sock in
  let buf = Buffer.create 4096 in
  let latencies = ref [] in
  for b = 0 to batches - 1 do
    let reqs =
      List.init batch (fun k ->
          let i = (b * batch) + k in
          P.request_to_line ~id:(T.Int i)
            (P.Insert
               ( "takes",
                 [
                   string_of_int (10_000 + (client * 10_000) + i);
                   string_of_int (i mod courses);
                 ] )))
    in
    send_all fd (String.concat "\n" reqs ^ "\n");
    let replies = read_replies fd buf ~want:batch in
    List.iteri
      (fun k r ->
        let want = T.Int ((b * batch) + k) in
        if r.P.id <> Some want then
          fail "client %d batch %d: reply %d out of pipeline order" client b k;
        if not r.P.ok then fail "client %d batch %d: insert %d rejected" client b k)
      replies;
    let t0 = Unix.gettimeofday () in
    send_all fd (P.request_to_line P.Validate ^ "\n");
    (match read_replies fd buf ~want:1 with
    | [ r ] ->
      latencies := (Unix.gettimeofday () -. t0) :: !latencies;
      if not r.P.ok then fail "client %d batch %d: validate failed" client b;
      let v = violated_of r.P.body in
      if v <> 0 then
        fail "client %d batch %d: clean stream reported %d violations" client b v
    | _ -> assert false);
    ()
  done;
  Unix.close fd;
  !latencies

(* The end-of-cell exactness probe: a planted dangling [takes] row
   must flip exactly one constraint to violated, and deleting it must
   flip it back. *)
let probe_exactness ~sock ~cell =
  let fd = connect sock in
  let buf = Buffer.create 256 in
  let rpc req =
    send_all fd (P.request_to_line req ^ "\n");
    List.hd (read_replies fd buf ~want:1)
  in
  let dangling = [ "77777"; "99999" ] in
  ignore (rpc (P.Insert ("takes", dangling)));
  let v1 = violated_of (rpc P.Validate).P.body in
  if v1 <> 1 then fail "%s: planted dangling row reported %d violations, want 1" cell v1;
  ignore (rpc (P.Delete ("takes", dangling)));
  let v0 = violated_of (rpc P.Validate).P.body in
  if v0 <> 0 then fail "%s: after deleting the plant, %d violations, want 0" cell v0;
  Unix.close fd

(* -- one cell of the matrix ------------------------------------------------ *)

type cell = {
  clients : int;
  shards : int;
  mutations : int;
  mutations_per_sec : float;
  p50_ms : float;
  p99_ms : float;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run_cell ~clients ~shards =
  let dir = tmpdir () in
  let sock = Filename.concat (tmpdir ()) "fcv.sock" in
  let state_dir = Filename.concat dir "state" in
  let tier, _ = Tier.recover ~shards ~state_dir ~load_base:make_base () in
  let config =
    {
      (S.default_config ~addr:sock) with
      S.state_dir = Some state_dir;
      snapshot_every = 0;
      idle_timeout = 0.;
      partial_timeout = 0.;
      shards;
      group_commit_window = 8;
    }
  in
  let srv = S.of_tier config tier in
  let th = Thread.create (fun () -> while S.poll ~timeout:0.005 srv do () done) () in
  ignore (S.register srv referential);
  let mu = Mutex.create () in
  let all_latencies = ref [] in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            let ls = client_loop ~sock ~client:c in
            Mutex.lock mu;
            all_latencies := ls @ !all_latencies;
            Mutex.unlock mu)
          ())
  in
  List.iter Thread.join workers;
  let wall = Unix.gettimeofday () -. t0 in
  let cell_name = Printf.sprintf "clients=%d shards=%d" clients shards in
  probe_exactness ~sock ~cell:cell_name;
  S.request_drain srv;
  Thread.join th;
  let mutations = clients * batches * batch in
  let sorted = Array.of_list (List.map (fun s -> s *. 1000.) !all_latencies) in
  Array.sort compare sorted;
  let cell =
    {
      clients;
      shards;
      mutations;
      mutations_per_sec = float_of_int mutations /. wall;
      p50_ms = percentile sorted 0.50;
      p99_ms = percentile sorted 0.99;
    }
  in
  Printf.printf
    "  %-22s %8.0f mutations/s   validate p50 %6.2f ms  p99 %6.2f ms\n%!" cell_name
    cell.mutations_per_sec cell.p50_ms cell.p99_ms;
  cell

(* -- baseline gate --------------------------------------------------------- *)

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  J.of_string s

let gate_against_baseline cells =
  let path = "bench/baseline_serve.json" in
  if not (Sys.file_exists path) then
    Printf.printf "(no %s — skipping the throughput floor)\n%!" path
  else
    match J.member "floors" (read_json path) with
    | Some (T.List floors) ->
      List.iter
        (fun f ->
          match (J.member "clients" f, J.member "shards" f, J.member "min_mutations_per_sec" f) with
          | Some (T.Int c), Some (T.Int s), Some floor ->
            let floor =
              match floor with T.Float x -> x | T.Int i -> float_of_int i | _ -> 0.
            in
            (match List.find_opt (fun x -> x.clients = c && x.shards = s) cells with
            | Some cell when cell.mutations_per_sec < floor ->
              fail "clients=%d shards=%d: %.0f mutations/s under the %.0f floor" c s
                cell.mutations_per_sec floor
            | Some _ -> ()
            | None -> fail "baseline names cell clients=%d shards=%d the matrix lacks" c s)
          | _ -> fail "malformed floor entry in %s" path)
        floors
    | _ -> fail "malformed %s: no floors list" path

(* -- entry ----------------------------------------------------------------- *)

let json_of_cell c =
  T.Obj
    [
      ("clients", T.Int c.clients);
      ("shards", T.Int c.shards);
      ("mutations", T.Int c.mutations);
      ("mutations_per_sec", T.Float c.mutations_per_sec);
      ("validate_p50_ms", T.Float c.p50_ms);
      ("validate_p99_ms", T.Float c.p99_ms);
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_serve.json" in
  Printf.printf
    "serving tier — pipelined batches of %d, group-commit window 8, %d batches/client\n%!"
    batch batches;
  let cells =
    List.concat_map
      (fun shards -> List.map (fun clients -> run_cell ~clients ~shards) [ 1; 4; 8 ])
      [ 1; 4 ]
  in
  gate_against_baseline cells;
  let doc =
    T.Obj
      [
        ("bench", T.String "serve");
        ( "env",
          T.Obj
            [
              ("cores", T.Int (Domain.recommended_domain_count ()));
              ("ocaml", T.String Sys.ocaml_version);
            ] );
        ("batch", T.Int batch);
        ("batches_per_client", T.Int batches);
        ("group_commit_window", T.Int 8);
        ("cells", T.List (List.map json_of_cell cells));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if !failures > 0 then begin
    Printf.printf "%d gate failure%s\n%!" !failures (if !failures = 1 then "" else "s");
    exit 1
  end
