(** Experiments E10–E11 (Fig. 5): constraint checking, BDD logical
    index versus the SQL engine, on the customer data.

    E10 — membership constraints through a 10,000-row
    Constraints(city, areacode) relation ("if city = X then
    areacode ∈ {...}") and its city→state variant.
    E11 — the implication (functional dependency) areacode → state:
    BDD via projection + model counting (the paper's method), SQL via
    the GROUP BY / HAVING COUNT(DISTINCT ...) query. *)

module R = Fcv_relation
open Bench_util

let constraints_rows = 10_000

type point = {
  rows : int;
  city_areacode_sql : float;
  city_areacode_bdd : float;
  city_state_sql : float;
  city_state_bdd : float;
  fd_sql : float;
  fd_bdd : float;
  cache_hit_rate : float;  (** apply-cache hit rate over the BDD checks *)
  peak_nodes : int;  (** manager high-water mark after the BDD checks *)
}

let membership_constraint =
  (* customers in a constrained city must use an allowed areacode *)
  "forall c, a . cust(a, _, c, _, _) and (exists a2 . allowed(c, a2)) -> allowed(c, a)"

let city_state_constraint =
  (* city determines state, via an explicit (city, state) rule table *)
  "forall c, s . cust(_, _, c, s, _) and (exists s2 . rules(c, s2)) -> rules(c, s)"

let fd_sql_query = "SELECT areacode FROM cust GROUP BY areacode HAVING COUNT(DISTINCT state) > 1"

let measure rows =
  let rng = Fcv_util.Rng.create (9000 + rows) in
  let db = Fcv_datagen.Customers.make_db () in
  let table, world =
    Fcv_datagen.Customers.generate ~violation_rate:0.0005 rng db ~name:"cust" ~rows
  in
  let _allowed =
    Fcv_datagen.Customers.constraints_table rng db world ~name:"allowed" ~n:constraints_rows
  in
  (* city -> state rules derived from the geography *)
  let rules = R.Database.create_table db ~name:"rules" ~attrs:[ ("city", "city"); ("state", "state") ] in
  Array.iteri
    (fun city state ->
      if city mod 2 = 0 then R.Table.insert_coded rules [| city; state |])
    world.Fcv_datagen.Customers.city_state;
  ignore table;
  (* indices: the paper's ncs projection covers every constraint here *)
  let index = Core.Index.create db in
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "city"; "state" ]
       ~strategy:Core.Ordering.Prob_converge ());
  ignore (Core.Index.add index ~table_name:"allowed" ~strategy:Core.Ordering.Prob_converge ());
  ignore (Core.Index.add index ~table_name:"rules" ~strategy:Core.Ordering.Prob_converge ());
  let mgr = Core.Index.mgr index in
  let reset () = Fcv_bdd.Manager.clear_caches mgr in
  let bdd_check src =
    let c = Core.Fol_parser.of_string src in
    time_ms ~reset (fun () ->
        let r = Core.Checker.check index c in
        assert (r.Core.Checker.method_used = Core.Checker.Bdd))
  in
  let sql_check src =
    let c = Core.Fol_parser.of_string src in
    time_ms (fun () -> ignore (Core.Checker.check_sql db c))
  in
  let before = Fcv_bdd.Manager.stats mgr in
  let p =
    {
      rows;
      city_areacode_sql = sql_check membership_constraint;
      city_areacode_bdd = bdd_check membership_constraint;
      city_state_sql = sql_check city_state_constraint;
      city_state_bdd = bdd_check city_state_constraint;
      fd_sql = time_ms (fun () -> ignore (Fcv_sql.Planner.count db fd_sql_query));
      fd_bdd =
        time_ms ~reset (fun () ->
            ignore
              (Core.Fd_check.fd_holds index ~table_name:"cust" ~lhs:[ "areacode" ]
                 ~rhs:[ "state" ]));
      cache_hit_rate = 0.;
      peak_nodes = 0;
    }
  in
  let after = Fcv_bdd.Manager.stats mgr in
  {
    p with
    cache_hit_rate = Fcv_bdd.Manager.cache_hit_rate ~before after;
    peak_nodes = after.Fcv_bdd.Manager.peak_nodes;
  }

let points = lazy (List.map measure customer_sizes)

let fig5a () =
  section "Fig 5(a): membership/join constraint checking, BDD vs SQL (ms)";
  row "%-10s %18s %18s %18s %18s %8s %12s\n" "rows" "city-area SQL" "city-area BDD"
    "city-state SQL" "city-state BDD" "hit%" "peak nodes";
  List.iter
    (fun p ->
      row "%-10d %18.1f %18.1f %18.1f %18.1f %7.1f%% %12d\n" p.rows p.city_areacode_sql
        p.city_areacode_bdd p.city_state_sql p.city_state_bdd
        (100. *. p.cache_hit_rate) p.peak_nodes)
    (Lazy.force points);
  paper_note "BDD beats SQL by significant margins, both constraint types";
  paper_note
    "our SQL baseline is an in-memory hash-join engine, far faster than a 2007 \
     disk-based RDBMS; see EXPERIMENTS.md"

let fig5b () =
  section "Fig 5(b): implication constraint areacode -> state, BDD vs SQL (ms)";
  row "%-10s %14s %14s %10s %8s %12s\n" "rows" "SQL" "BDD" "SQL/BDD" "hit%" "peak nodes";
  List.iter
    (fun p ->
      row "%-10d %14.1f %14.1f %10.1f %7.1f%% %12d\n" p.rows p.fd_sql p.fd_bdd
        (p.fd_sql /. p.fd_bdd) (100. *. p.cache_hit_rate) p.peak_nodes)
    (Lazy.force points);
  paper_note "BDD outperforms the SQL group-by by a factor of 6 to 8"

let all () =
  fig5a ();
  fig5b ()
