(* j-scaling benchmark for parallel constraint validation.

     dune exec bench/parallel.exe [-- OUT.json]

   Runs Checker.check_all at j ∈ {1, 2, 4, 8} over two datagen
   workloads — the 50-constraint university policy suite and a
   24-constraint retail audit — and writes BENCH_parallel.json
   (default; first argument overrides) for bench/check_regression.ml
   to gate against bench/baseline.json.

   Two kinds of numbers come out:
   - violated counts per workload, identical at every j by
     construction (asserted here) — the machine-portable correctness
     canary the regression gate pins exactly;
   - best-of-R wall-clock per j and the speedup over j=1 — only
     meaningful up to the machine's core count, which is recorded
     under env.cores so the gate can skip oversubscribed points. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry

let repeats = 3
let jobs_list = [ 1; 2; 4; 8 ]

(* -- workloads --------------------------------------------------------------- *)

(* The paper's running example scaled to 50 constraints: the four
   structural constraints (referential integrity both ways, two FDs)
   plus 46 department-area policy variants of "every CS student takes
   some Programming course" (department 0 = CS, area 0 = Programming
   in the generator's coding). *)
let university_constraints =
  [
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
    "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
    "forall s, d1, k1, d2, k2 . student(s, d1, k1) and student(s, d2, k2) -> d1 = d2";
    "forall c, a1, a2 . course(c, a1) and course(c, a2) -> a1 = a2";
  ]
  @ List.init 46 (fun i ->
        Printf.sprintf
          "forall s, k . student(s, %d, k) -> (exists c . takes(s, c) and course(c, %d))"
          (i mod 8) (i / 8))

let university () =
  let rng = Fcv_util.Rng.create 42 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 3_000; violators = 30 }
  in
  (db, university_constraints)

(* The retail audit suite plus per-segment channel-policy and
   per-carrier registration variants: 8 + 4 + 12 = 24 constraints. *)
let retail_constraints =
  List.map snd Fcv_datagen.Retail.audit_constraints
  @ List.init 4 (fun sg ->
        Printf.sprintf
          "forall c, ch . orders(_, c, _, _, ch) and customers(c, _, _, %d) -> \
           allowed_channel(%d, ch)"
          sg sg)
  @ List.init 12 (fun k ->
        Printf.sprintf "forall o . shipments(o, %d, _) -> (exists hs . carriers(%d, hs))" k k)

let retail () =
  let rng = Fcv_util.Rng.create 42 in
  let gen =
    Fcv_datagen.Retail.generate rng
      {
        Fcv_datagen.Retail.default with
        customers = 2_000;
        products = 500;
        orders = 10_000;
        bad_ref_rate = 0.002;
        bad_dest_rate = 0.01;
        bad_channel_rate = 0.005;
      }
  in
  (gen.Fcv_datagen.Retail.db, retail_constraints)

(* -- measurement ------------------------------------------------------------- *)

type point = { jobs : int; best_ms : float; mean_ms : float; speedup : float }

let time_once index formulas jobs =
  let t0 = Fcv_util.Timer.now () in
  let results = Core.Checker.check_all ~jobs index formulas in
  let ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
  let violated =
    List.length
      (List.filter (fun r -> r.Core.Checker.outcome = Core.Checker.Violated) results)
  in
  (ms, violated)

let run_workload name make =
  Printf.printf "\n== %s ==\n%!" name;
  let db, sources = make () in
  let formulas = List.map Core.Fol_parser.of_string sources in
  let index = Core.Index.create ~max_nodes:1_000_000 db in
  Core.Checker.ensure_indices index formulas;
  let baseline_violated = ref None in
  let series =
    List.map
      (fun jobs ->
        let runs = List.init repeats (fun _ -> time_once index formulas jobs) in
        let times = List.map fst runs in
        let violated = snd (List.hd runs) in
        (match !baseline_violated with
        | None -> baseline_violated := Some violated
        | Some v ->
          if v <> violated then
            failwith
              (Printf.sprintf "%s: j=%d found %d violations, j=1 found %d" name jobs
                 violated v));
        let best = List.fold_left min infinity times in
        let mean = List.fold_left ( +. ) 0. times /. float_of_int repeats in
        (jobs, best, mean, violated))
      jobs_list
  in
  let t1 = match series with (_, best, _, _) :: _ -> best | [] -> assert false in
  let points =
    List.map
      (fun (jobs, best, mean, _) ->
        let speedup = t1 /. best in
        Printf.printf "  j=%-2d best %8.2f ms  mean %8.2f ms  speedup %.2fx\n%!" jobs best
          mean speedup;
        { jobs; best_ms = best; mean_ms = mean; speedup })
      series
  in
  let violated = Option.get !baseline_violated in
  Printf.printf "  violated %d/%d (identical at every j)\n%!" violated
    (List.length formulas);
  (name, List.length formulas, violated, points)

(* -- output ------------------------------------------------------------------ *)

let json_of_point p =
  T.Obj
    [
      ("jobs", T.Int p.jobs);
      ("best_ms", T.Float p.best_ms);
      ("mean_ms", T.Float p.mean_ms);
      ("speedup", T.Float p.speedup);
    ]

let json_of_workload (name, n, violated, points) =
  T.Obj
    [
      ("name", T.String name);
      ("constraints", T.Int n);
      ("violated", T.Int violated);
      ("series", T.List (List.map json_of_point points));
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_parallel.json" in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "parallel validation scaling — %d core%s available, j ∈ {%s}\n" cores
    (if cores = 1 then "" else "s")
    (String.concat ", " (List.map string_of_int jobs_list));
  if cores = 1 then
    print_endline "(single core: expect no speedup; the gate only pins verdicts)";
  let uni = run_workload "university" university in
  let ret = run_workload "retail" retail in
  let workloads = [ uni; ret ] in
  let doc =
    T.Obj
      [
        ("bench", T.String "parallel");
        ( "env",
          T.Obj [ ("cores", T.Int cores); ("ocaml", T.String Sys.ocaml_version) ] );
        ("repeats", T.Int repeats);
        ("workloads", T.List (List.map json_of_workload workloads));
      ]
  in
  let oc = open_out out in
  output_string oc (T.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out
