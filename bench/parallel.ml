(* j-scaling benchmark for parallel constraint validation.

     dune exec bench/parallel.exe [-- OUT.json]

   Runs the steady-state serving shape at j ∈ {1, 2, 4, 8} over two
   datagen workloads — the 50-constraint university policy suite and a
   24-constraint retail audit — and writes BENCH_parallel.json
   (default; first argument overrides) for bench/check_regression.ml
   to gate against bench/baseline.json.

   Each parallel point owns a persistent pool + replica set (the
   monitor/server shape — worker spawn and hydration amortise across
   validations, they are not what the paper's scenario pays per
   epoch).  A warm-up pass hydrates every worker untimed; each timed
   pass is preceded (outside the timer) by a net-zero insert+delete
   pair so the pass exercises the delta catch-up path exactly like a
   mutation epoch in serving — and the violated counts stay
   bit-identical across j, which this file asserts.

   Three kinds of numbers come out:
   - violated counts per workload, identical at every j by
     construction — the machine-portable correctness canary the
     regression gate pins exactly;
   - best-of-R wall-clock per j and the speedup over j=1 — only
     meaningful up to the machine's core count, which is recorded
     under env.cores so the gate can skip oversubscribed points;
   - hydration-mode telemetry per parallel point (full vs delta
     refreshes, ops replayed, bytes) — the delta machinery's
     observable, also written to BENCH_hydration.json. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry

let repeats = 3
let jobs_list = [ 1; 2; 4; 8 ]

(* -- workloads --------------------------------------------------------------- *)

(* The paper's running example scaled to 50 constraints: the four
   structural constraints (referential integrity both ways, two FDs)
   plus 46 department-area policy variants of "every CS student takes
   some Programming course" (department 0 = CS, area 0 = Programming
   in the generator's coding). *)
let university_constraints =
  [
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
    "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
    "forall s, d1, k1, d2, k2 . student(s, d1, k1) and student(s, d2, k2) -> d1 = d2";
    "forall c, a1, a2 . course(c, a1) and course(c, a2) -> a1 = a2";
  ]
  @ List.init 46 (fun i ->
        Printf.sprintf
          "forall s, k . student(s, %d, k) -> (exists c . takes(s, c) and course(c, %d))"
          (i mod 8) (i / 8))

let university () =
  let rng = Fcv_util.Rng.create 42 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 3_000; violators = 30 }
  in
  (db, university_constraints)

(* The retail audit suite plus per-segment channel-policy and
   per-carrier registration variants: 8 + 4 + 12 = 24 constraints. *)
let retail_constraints =
  List.map snd Fcv_datagen.Retail.audit_constraints
  @ List.init 4 (fun sg ->
        Printf.sprintf
          "forall c, ch . orders(_, c, _, _, ch) and customers(c, _, _, %d) -> \
           allowed_channel(%d, ch)"
          sg sg)
  @ List.init 12 (fun k ->
        Printf.sprintf "forall o . shipments(o, %d, _) -> (exists hs . carriers(%d, hs))" k k)

let retail () =
  let rng = Fcv_util.Rng.create 42 in
  let gen =
    Fcv_datagen.Retail.generate rng
      {
        Fcv_datagen.Retail.default with
        customers = 2_000;
        products = 500;
        orders = 10_000;
        bad_ref_rate = 0.002;
        bad_dest_rate = 0.01;
        bad_channel_rate = 0.005;
      }
  in
  (gen.Fcv_datagen.Retail.db, retail_constraints)

(* -- measurement ------------------------------------------------------------- *)

type point = {
  jobs : int;
  best_ms : float;
  mean_ms : float;
  speedup : float;
  hydration : Core.Replica.stats option;  (** parallel points only *)
}

let count_violated results =
  List.length
    (List.filter (fun r -> r.Core.Checker.outcome = Core.Checker.Violated) results)

(* One net-zero mutation epoch: insert a duplicate of an existing row
   of the first indexed table, then delete it again.  Base tables and
   verdicts end unchanged, but the replica epoch advances by two row
   ops — the steady-state serving shape the delta path exists for. *)
let mutation_pair index replica =
  let table =
    match Core.Index.entries index with
    | e :: _ -> e.Core.Index.table
    | [] -> failwith "mutation_pair: no indexed table"
  in
  let table_name = R.Table.name table in
  let row = Array.copy (R.Table.row table 0) in
  Core.Index.insert index ~table_name row;
  (match replica with
  | Some r -> Core.Replica.note_insert r ~table_name row
  | None -> ());
  ignore (Core.Index.delete index ~table_name row);
  match replica with
  | Some r -> Core.Replica.note_delete r ~table_name row
  | None -> ()

let run_workload name make =
  Printf.printf "\n== %s ==\n%!" name;
  let db, sources = make () in
  let formulas = List.map Core.Fol_parser.of_string sources in
  let index = Core.Index.create ~max_nodes:1_000_000 db in
  Core.Checker.ensure_indices index formulas;
  (* sequential warm pass: prices every constraint for the scheduler
     and gives the verdict canary parallel runs must reproduce *)
  let warm = List.map (Core.Checker.check index) formulas in
  let costs = List.map (fun r -> Some r.Core.Checker.elapsed_ms) warm in
  let baseline_violated = count_violated warm in
  let time_point jobs =
    if jobs = 1 then (
      let runs =
        List.init repeats (fun _ ->
            mutation_pair index None;
            let t0 = Fcv_util.Timer.now () in
            let results = List.map (Core.Checker.check index) formulas in
            ((Fcv_util.Timer.now () -. t0) *. 1000., count_violated results))
      in
      (List.map fst runs, List.map snd runs, None))
    else begin
      let pool = Fcv_util.Pool.create ~name:"bench" ~jobs () in
      let replica = Core.Replica.create index in
      Fun.protect
        ~finally:(fun () -> Fcv_util.Pool.shutdown pool)
        (fun () ->
          (* warm-up: spawn-cost-free steady state — every worker
             hydrated before the first timed pass *)
          ignore (Core.Checker.check_all_pooled ~costs ~pool replica formulas);
          let runs =
            List.init repeats (fun _ ->
                mutation_pair index (Some replica);
                let t0 = Fcv_util.Timer.now () in
                let results = Core.Checker.check_all_pooled ~costs ~pool replica formulas in
                ((Fcv_util.Timer.now () -. t0) *. 1000., count_violated results))
          in
          (List.map fst runs, List.map snd runs, Some (Core.Replica.stats replica)))
    end
  in
  let series =
    List.map
      (fun jobs ->
        let times, violateds, hydration = time_point jobs in
        List.iter
          (fun violated ->
            if violated <> baseline_violated then
              failwith
                (Printf.sprintf "%s: j=%d found %d violations, sequential found %d" name
                   jobs violated baseline_violated))
          violateds;
        let best = List.fold_left min infinity times in
        let mean = List.fold_left ( +. ) 0. times /. float_of_int repeats in
        (jobs, best, mean, hydration))
      jobs_list
  in
  let t1 = match series with (_, best, _, _) :: _ -> best | [] -> assert false in
  let points =
    List.map
      (fun (jobs, best, mean, hydration) ->
        let speedup = t1 /. best in
        Printf.printf "  j=%-2d best %8.2f ms  mean %8.2f ms  speedup %.2fx%s\n%!" jobs
          best mean speedup
          (match hydration with
          | Some h ->
            Printf.sprintf "  (hydrations: %d full, %d delta, %d ops replayed)"
              h.Core.Replica.full h.Core.Replica.delta h.Core.Replica.delta_ops
          | None -> "");
        { jobs; best_ms = best; mean_ms = mean; speedup; hydration })
      series
  in
  Printf.printf "  violated %d/%d (identical at every j)\n%!" baseline_violated
    (List.length formulas);
  (name, List.length formulas, baseline_violated, points)

(* -- output ------------------------------------------------------------------ *)

let json_of_hydration h =
  T.Obj
    [
      ("full", T.Int h.Core.Replica.full);
      ("delta", T.Int h.Core.Replica.delta);
      ("delta_ops", T.Int h.Core.Replica.delta_ops);
      ("snapshot_bytes", T.Int h.Core.Replica.snapshot_bytes);
      ("delta_bytes", T.Int h.Core.Replica.delta_bytes);
    ]

let json_of_point p =
  T.Obj
    ([
       ("jobs", T.Int p.jobs);
       ("best_ms", T.Float p.best_ms);
       ("mean_ms", T.Float p.mean_ms);
       ("speedup", T.Float p.speedup);
     ]
    @ match p.hydration with None -> [] | Some h -> [ ("hydration", json_of_hydration h) ])

let json_of_workload (name, n, violated, points) =
  T.Obj
    [
      ("name", T.String name);
      ("constraints", T.Int n);
      ("violated", T.Int violated);
      ("series", T.List (List.map json_of_point points));
    ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_parallel.json" in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "parallel validation scaling — %d core%s available, j ∈ {%s}\n" cores
    (if cores = 1 then "" else "s")
    (String.concat ", " (List.map string_of_int jobs_list));
  if cores = 1 then
    print_endline "(single core: expect no speedup; the gate only pins verdicts)";
  let uni = run_workload "university" university in
  let ret = run_workload "retail" retail in
  let workloads = [ uni; ret ] in
  let env = T.Obj [ ("cores", T.Int cores); ("ocaml", T.String Sys.ocaml_version) ] in
  let doc =
    T.Obj
      [
        ("bench", T.String "parallel");
        ("env", env);
        ("repeats", T.Int repeats);
        ("workloads", T.List (List.map json_of_workload workloads));
      ]
  in
  let oc = open_out out in
  output_string oc (T.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" out;
  (* hydration telemetry stands alone too: CI uploads it as a named
     artifact next to the timing numbers *)
  let hyd_out = Filename.concat (Filename.dirname out) "BENCH_hydration.json" in
  let hyd_doc =
    T.Obj
      [
        ("bench", T.String "parallel-hydration");
        ("env", env);
        ( "workloads",
          T.List
            (List.map
               (fun (name, _, _, points) ->
                 T.Obj
                   [
                     ("name", T.String name);
                     ( "series",
                       T.List
                         (List.filter_map
                            (fun p ->
                              Option.map
                                (fun h ->
                                  T.Obj
                                    [
                                      ("jobs", T.Int p.jobs);
                                      ("hydration", json_of_hydration h);
                                    ])
                                p.hydration)
                            points) );
                   ])
               workloads) );
      ]
  in
  let oc = open_out hyd_out in
  output_string oc (T.Json.to_string hyd_doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" hyd_out
