(** Experiments E7–E9 (Fig. 4): encoding the customer relation into
    BDD logical indices — construction time, per-update maintenance
    time and node count, as the relation grows.

    Two indices, exactly the paper's: ncs = (areacode, city, state)
    (29 boolean variables) and csz = (city, state, zipcode) (35). *)

module R = Fcv_relation
open Bench_util

let ncs = [ "areacode"; "city"; "state" ]
let csz = [ "city"; "state"; "zipcode" ]

type point = {
  rows : int;
  build_ms : (string * float) list;  (** per index *)
  naive_build_ms : (string * float) list;  (** reference OR-tree builder *)
  update_us : (string * float) list;  (** avg insert+delete, microseconds *)
  nodes : (string * int) list;
}

let measure rows =
  let rng = Fcv_util.Rng.create (8000 + rows) in
  let db = Fcv_datagen.Customers.make_db () in
  let table, _ = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows in
  let index = Core.Index.create db in
  let one attrs label =
    let t0 = Fcv_util.Timer.now () in
    let entry = Core.Index.add index ~table_name:"cust" ~attrs ~strategy:Core.Ordering.Prob_converge () in
    let build_ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
    let nodes = Core.Index.entry_size index entry in
    (* per-update cost: insert + delete a FRESH random row on every
       iteration, so the root drifts and no operation repeats a cached
       (root, minterm) pair — a fixed victim row would measure pure
       cache hits after the first pass *)
    let urng = Fcv_util.Rng.create (rows + 17) in
    let update () =
      let row =
        [|
          Fcv_util.Rng.int urng Fcv_datagen.Customers.n_areacode;
          Fcv_util.Rng.int urng Fcv_datagen.Customers.n_number;
          Fcv_util.Rng.int urng Fcv_datagen.Customers.n_city;
          Fcv_util.Rng.int urng Fcv_datagen.Customers.n_state;
          Fcv_util.Rng.int urng Fcv_datagen.Customers.n_zip;
        |]
      in
      Core.Index.update_entry index entry ~insert:true row;
      Core.Index.update_entry index entry ~insert:false row
    in
    let ns = bechamel_ns ~quota:0.3 (label ^ "-update") update in
    ignore table;
    (label, build_ms, nodes, ns /. 2. /. 1000.)
  in
  let ncs_r = one ncs "ncs" in
  let csz_r = one csz "csz" in
  (* reference naive builder, only at sizes where it stays reasonable *)
  let naive =
    if rows <= 50_000 then begin
      List.map
        (fun (attrs, label) ->
          let proj = Core.Index.project table (List.map (R.Schema.position (R.Table.schema table)) attrs |> List.sort compare |> Array.of_list) in
          let mgr = Fcv_bdd.Manager.create ~nvars:0 () in
          let order = Core.Ordering.prob_converge proj in
          let blocks = R.Encode.alloc_blocks mgr proj ~order in
          let _, ms = Fcv_util.Timer.time_ms (fun () -> R.Encode.build_naive mgr proj ~order ~blocks) in
          (label, ms))
        [ (ncs, "ncs"); (csz, "csz") ]
    end
    else []
  in
  let pick3 (l, b, n, u) = ((l, b), (l, n), (l, u)) in
  let (b1, n1, u1) = pick3 ncs_r and (b2, n2, u2) = pick3 csz_r in
  { rows; build_ms = [ b1; b2 ]; naive_build_ms = naive; update_us = [ u1; u2 ]; nodes = [ n1; n2 ] }

let points = lazy (List.map measure customer_sizes)

let fig4a () =
  section "Fig 4(a): BDD index construction time vs relation size";
  row "%-10s %14s %14s %18s %18s\n" "rows" "ncs (ms)" "csz (ms)" "ncs naive (ms)" "csz naive (ms)";
  List.iter
    (fun p ->
      let get l xs = try Printf.sprintf "%14.1f" (List.assoc l xs) with Not_found -> Printf.sprintf "%14s" "-" in
      row "%-10d %s %s %s %s\n" p.rows
        (get "ncs" p.build_ms) (get "csz" p.build_ms)
        (get "ncs" p.naive_build_ms) (get "csz" p.naive_build_ms))
    (Lazy.force points);
  paper_note "construction grows near-linearly; ~7s at 400k tuples on 2007 hardware";
  paper_note "the sorted-codes direct builder is the ablation vs the naive OR-tree"

let fig4b () =
  section "Fig 4(b): average BDD update time (insert+delete) vs relation size";
  row "%-10s %16s %16s\n" "rows" "ncs (us/update)" "csz (us/update)";
  List.iter
    (fun p ->
      row "%-10d %16.2f %16.2f\n" p.rows
        (List.assoc "ncs" p.update_us) (List.assoc "csz" p.update_us))
    (Lazy.force points);
  paper_note "60-110 microseconds per update, roughly flat in relation size"

let fig4c () =
  section "Fig 4(c): BDD index size (nodes) vs relation size";
  row "%-10s %14s %14s\n" "rows" "ncs (nodes)" "csz (nodes)";
  List.iter
    (fun p ->
      row "%-10d %14d %14d\n" p.rows (List.assoc "ncs" p.nodes) (List.assoc "csz" p.nodes))
    (Lazy.force points);
  paper_note "tens of thousands of nodes (20 B/node) even at 400k tuples: memory-efficient"

let all () =
  fig4a ();
  fig4b ();
  fig4c ()
