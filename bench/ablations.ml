(** Ablation study of the checker pipeline (DESIGN.md §5): each row is
    one constraint on the customer workload, each column removes one
    ingredient —

    - full:      §4.4 rewrites, fused appex/appall, violation polarity
    - direct:    same rewrites, direct validity test instead of the
                 violation-satisfiability test
    - unfused:   rewrites, direct polarity, separate quantify-after-
                 apply instead of appex/appall
    - none:      no rewrites at all (closed-formula validity, unfused)

    The naive-vs-direct relation encoder is ablated in fig4a and the
    ordering strategies in table1. *)

module M = Fcv_bdd.Manager
open Bench_util

let rows = match scale with Quick -> 50_000 | Full -> 400_000

let constraints =
  [
    ( "fd areacode->state",
      "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2" );
    ( "membership",
      "forall c, a . cust(a, _, c, _, _) and (exists a2 . allowed(c, a2)) -> allowed(c, a)" );
    ( "curriculum-shaped",
      "forall c . cust(_, _, c, _, _) -> (exists a . allowed(c, a)) \
       or (exists s . rules(c, s))" );
  ]

(* "full" keeps every optimisation including the FD fast path; the
   other columns disable the fast path so the FD row exposes what the
   generic compiler costs under each variant. *)
let pipelines =
  [
    ("full", Core.Checker.default_pipeline);
    ( "compiled",
      { Core.Checker.default_pipeline with Core.Checker.use_fd_fast_path = false } );
    ( "direct",
      { Core.Checker.direct_pipeline with Core.Checker.use_fd_fast_path = false } );
    ( "unfused",
      {
        Core.Checker.direct_pipeline with
        Core.Checker.use_appquant = false;
        use_fd_fast_path = false;
      } );
    ("none", Core.Checker.naive_pipeline);
  ]

let run () =
  section "Ablations: checker pipeline variants (ms per check)";
  let rng = Fcv_util.Rng.create 4242 in
  let db = Fcv_datagen.Customers.make_db () in
  let _cust, world =
    Fcv_datagen.Customers.generate ~violation_rate:0.001 rng db ~name:"cust" ~rows
  in
  let _allowed =
    Fcv_datagen.Customers.constraints_table rng db world ~name:"allowed" ~n:10_000
  in
  let rules =
    Fcv_relation.Database.create_table db ~name:"rules"
      ~attrs:[ ("city", "city"); ("state", "state") ]
  in
  Array.iteri
    (fun city state ->
      if city mod 3 = 0 then Fcv_relation.Table.insert_coded rules [| city; state |])
    world.Fcv_datagen.Customers.city_state;
  let index = Core.Index.create db in
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "city"; "state" ]
       ~strategy:Core.Ordering.Prob_converge ());
  ignore (Core.Index.add index ~table_name:"allowed" ~strategy:Core.Ordering.Prob_converge ());
  ignore (Core.Index.add index ~table_name:"rules" ~strategy:Core.Ordering.Prob_converge ());
  let reset () = M.clear_caches (Core.Index.mgr index) in
  row "%-22s" "constraint";
  List.iter (fun (name, _) -> row " %10s" name) pipelines;
  row "\n";
  List.iter
    (fun (label, src) ->
      let c = Core.Fol_parser.of_string src in
      row "%-22s" label;
      List.iter
        (fun (_, pipeline) ->
          let ms =
            time_ms ~reset (fun () -> ignore (Core.Checker.check ~pipeline index c))
          in
          row " %10.1f" ms)
        pipelines;
      row "\n")
    constraints;
  paper_note
    "on index-dominated constraints (rename + projection costs) the variants \
     tie; the rewrites' profit shows on quantifier-heavy multi-join queries — \
     see table1's no-rewrite column (up to ~15x slower than the full pipeline)"
