# Convenience wrappers; `make verify` is the CI gate (format check
# when ocamlformat is present, build, tests with a pinned QCheck seed).

.PHONY: all build test verify fmt bench clean

all: build

build:
	dune build

test:
	dune runtest --force

verify:
	sh bench/ci.sh

fmt:
	dune build @fmt --auto-promote

bench:
	dune exec bench/main.exe

clean:
	dune clean
