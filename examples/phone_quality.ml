(* Data-quality auditing on the customer data — the paper's headline
   scenario (§1, §5.2): a table of customers (areacode, number, city,
   state, zipcode) and a battery of constraints of the kinds the paper
   evaluates:

   - membership:   if city = X then areacode ∈ {...}   (via a
                   Constraints(city, areacode) relation, Fig. 5a),
   - implication:  if city = 'Toronto' then state = 'Ontario' style,
   - functional dependency: areacode → state (Fig. 5b).

   Each constraint is checked with both the SQL engine and the BDD
   logical index; violations are then enumerated from the BDDs.

   Run with: dune exec examples/phone_quality.exe *)

module R = Fcv_relation
module C = Core.Checker

let outcome = function C.Satisfied -> "satisfied" | C.Violated -> "VIOLATED"

let () =
  let rng = Fcv_util.Rng.create 7 in
  let db = Fcv_datagen.Customers.make_db () in
  let cust, world =
    Fcv_datagen.Customers.generate ~violation_rate:0.001 rng db ~name:"cust" ~rows:50_000
  in
  let _cons =
    Fcv_datagen.Customers.constraints_table rng db world ~name:"allowed" ~n:10_000
  in
  Printf.printf "customers: %d rows over domains (%d, %d, %d, %d, %d)\n"
    (R.Table.cardinality cust) Fcv_datagen.Customers.n_areacode
    Fcv_datagen.Customers.n_number Fcv_datagen.Customers.n_city
    Fcv_datagen.Customers.n_state Fcv_datagen.Customers.n_zip;

  let constraints =
    [
      ( "constrained cities use an allowed areacode",
        "forall c, a . cust(a, _, c, _, _) and (exists a2 . allowed(c, a2)) \
         -> allowed(c, a)" );
      ( "functional dependency areacode -> state",
        "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2" );
      ( "city 0 customers live in city 0's home state",
        Printf.sprintf "forall s . cust(_, _, 0, s, _) -> s = %d"
          world.Fcv_datagen.Customers.city_state.(0) );
      ( "zipcode determines the city",
        "forall z, c1, c2 . cust(_, _, c1, _, z) and cust(_, _, c2, _, z) -> c1 = c2" );
    ]
  in

  (* one-time index construction — the paper's two projection indices
     ncs = (areacode, city, state) and csz = (city, state, zipcode),
     plus the Constraints relation, all ordered by Prob-Converge *)
  let t0 = Fcv_util.Timer.now () in
  let index = Core.Index.create db in
  let parsed = List.map (fun (_, s) -> Core.Fol_parser.of_string s) constraints in
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "city"; "state" ]
       ~strategy:Core.Ordering.Prob_converge ());
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "city"; "state"; "zipcode" ]
       ~strategy:Core.Ordering.Prob_converge ());
  ignore (Core.Index.add index ~table_name:"allowed" ~strategy:Core.Ordering.Prob_converge ());
  Printf.printf "index build: %.1f ms total, sizes:" ((Fcv_util.Timer.now () -. t0) *. 1000.);
  List.iter
    (fun e ->
      Printf.printf " %s=%d" (R.Table.name e.Core.Index.table) (Core.Index.entry_size index e))
    (Core.Index.entries index);
  print_newline ();

  Printf.printf "\n%-45s %12s %12s\n" "constraint" "SQL (ms)" "BDD (ms)";
  List.iter2
    (fun (label, _) c ->
      let sql_outcome, sql_ms = C.check_sql db c in
      let r = C.check index c in
      Printf.printf "%-45s %9.2f %2s %9.2f %2s\n" label sql_ms
        (match sql_outcome with C.Satisfied -> "ok" | _ -> "!!")
        r.C.elapsed_ms
        (match r.C.outcome with C.Satisfied -> "ok" | _ -> "!!");
      if r.C.outcome <> (match sql_outcome with o -> o) then
        print_endline "  WARNING: methods disagree!")
    constraints parsed;

  (* sample some witnesses of the first violated constraint *)
  print_newline ();
  List.iter2
    (fun (label, _) c ->
      let r = C.check index c in
      if r.C.outcome = C.Violated then begin
        Printf.printf "sample violations of %S:\n" label;
        match Core.Violations.enumerate ~limit:3 index c with
        | Some ws ->
          List.iter
            (fun w ->
              print_endline
                ("  "
                ^ String.concat ", "
                    (List.map
                       (fun (x, v) -> x ^ "=" ^ R.Value.to_string v)
                       w)))
            ws
        | None -> print_endline "  (no finite witnesses)"
      end)
    constraints parsed;
  ignore outcome
