(* Incremental maintenance (§5.2, Fig. 4b): logical indices are kept
   in sync as the base tables evolve — the scenario the paper's
   introduction motivates ("databases are primarily dynamic").

   A stream of inserts and deletes flows into the customer table; the
   indices absorb each update in microseconds, and the constraint is
   re-validated after every batch, catching the moment a bad tuple
   arrives.

   Run with: dune exec examples/incremental.exe *)

module R = Fcv_relation
module C = Core.Checker

let fd_constraint =
  "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2"

let () =
  let rng = Fcv_util.Rng.create 11 in
  let db = Fcv_datagen.Customers.make_db () in
  let cust, world = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows:20_000 in
  let index = Core.Index.create db in
  let c = Core.Fol_parser.of_string fd_constraint in
  C.ensure_indices index [ c ];
  let entry = List.hd (Core.Index.entries_for index "cust") in
  Printf.printf "initial: %d rows, index %d nodes\n" (R.Table.cardinality cust)
    (Core.Index.entry_size index entry);

  let by_state = Fcv_datagen.Customers.areas_by_state world in
  let random_clean_row () =
    let zip = Fcv_util.Rng.int rng Fcv_datagen.Customers.n_zip in
    let city = world.Fcv_datagen.Customers.zip_city.(zip) in
    let state = world.Fcv_datagen.Customers.city_state.(city) in
    let candidates = by_state.(state) in
    let areacode =
      if Array.length candidates = 0 then 0 else Fcv_util.Rng.choose rng candidates
    in
    [| areacode; Fcv_util.Rng.int rng Fcv_datagen.Customers.n_number; city; state; zip |]
  in

  (* batches of clean updates, then one poisoned batch *)
  let batches = 5 in
  for batch = 1 to batches do
    let timer = Fcv_util.Timer.create () in
    Fcv_util.Timer.start timer;
    let updates = 1000 in
    for _ = 1 to updates do
      if Fcv_util.Rng.bernoulli rng 0.5 then
        Core.Index.insert index ~table_name:"cust" (random_clean_row ())
      else begin
        let n = R.Table.cardinality cust in
        if n > 0 then begin
          let victim = Array.copy (R.Table.row cust (Fcv_util.Rng.int rng n)) in
          ignore (Core.Index.delete index ~table_name:"cust" victim)
        end
      end
    done;
    (* poison the last batch: one tuple pairing an areacode with a
       second state *)
    if batch = batches then begin
      let row = random_clean_row () in
      let bad_state = (row.(3) + 1) mod Fcv_datagen.Customers.n_state in
      Core.Index.insert index ~table_name:"cust"
        [| row.(0); row.(1); row.(2); bad_state; row.(4) |]
    end;
    Fcv_util.Timer.stop timer;
    let per_update_us = Fcv_util.Timer.elapsed timer /. 1001. *. 1e6 in
    let r = C.check index c in
    Printf.printf
      "batch %d: ~%.1f us/update, %d rows, index %d nodes -> areacode->state %s (%.2f ms)\n"
      batch per_update_us (R.Table.cardinality cust)
      (Core.Index.entry_size index entry)
      (match r.C.outcome with C.Satisfied -> "holds" | C.Violated -> "VIOLATED")
      r.C.elapsed_ms
  done;

  match Core.Violations.enumerate ~limit:4 index c with
  | Some ws when ws <> [] ->
    print_endline "offending areacode/state pairs:";
    List.iter
      (fun w ->
        print_endline
          ("  "
          ^ String.concat ", "
              (List.map (fun (x, v) -> x ^ "=" ^ R.Value.to_string v) w)))
      ws
  | _ -> ()
