(* The paper's §1 running example: STUDENT / COURSE / TAKES and the
   policy "every CS student takes some Programming course".

   Shows the two evaluation routes side by side:
   - the SQL violation query (the NOT EXISTS query from the paper's
     introduction), and
   - the BDD logical-index check with the §4.4 rewrite pipeline,
   and walks through what each rewrite stage does to the formula.

   Run with: dune exec examples/curriculum.exe *)

module F = Core.Formula
module RW = Core.Rewrite

let policy =
  "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"

let () =
  let rng = Fcv_util.Rng.create 2026 in
  let db, student, course, takes =
    Fcv_datagen.University.generate rng
      {
        Fcv_datagen.University.default with
        students = 2000;
        courses = 120;
        violators = 12;
      }
  in
  Printf.printf "STUDENT: %d rows, COURSE: %d rows, TAKES: %d rows\n"
    (Fcv_relation.Table.cardinality student)
    (Fcv_relation.Table.cardinality course)
    (Fcv_relation.Table.cardinality takes);
  let c = Core.Fol_parser.of_string policy in
  Printf.printf "\npolicy (department 0 = CS, area 0 = Programming):\n  %s\n" (F.to_string c);

  (* --- the rewrite pipeline, stage by stage --------------------------- *)
  print_endline "\nrewrite pipeline (Section 4.4):";
  let prefix, matrix = RW.prenex c in
  Printf.printf "  prenex:            %s\n" (F.to_string (RW.requantify prefix matrix));
  let mode, eliminated = RW.eliminate_leading (prefix, matrix) in
  Printf.printf "  drop leading run:  %s   [check: %s]\n" (F.to_string eliminated)
    (match mode with RW.Check_valid -> "validity" | RW.Check_satisfiable -> "satisfiability");
  let pushed = RW.push_forall eliminated in
  Printf.printf "  push-down foralls: %s\n" (F.to_string pushed);

  (* --- SQL route ------------------------------------------------------- *)
  let sql_outcome, sql_ms = Core.Checker.check_sql db c in
  Printf.printf "\nSQL violation query:  %s  in %.2f ms\n"
    (match sql_outcome with Core.Checker.Satisfied -> "satisfied" | _ -> "VIOLATED")
    sql_ms;

  (* --- BDD route --------------------------------------------------------- *)
  let index = Core.Index.create db in
  Core.Checker.ensure_indices index [ c ];
  let r = Core.Checker.check index c in
  Printf.printf "BDD logical indices:  %s  in %.2f ms (after one-time index build)\n"
    (match r.Core.Checker.outcome with Core.Checker.Satisfied -> "satisfied" | _ -> "VIOLATED")
    r.Core.Checker.elapsed_ms;

  (* --- drill down -------------------------------------------------------- *)
  (match Core.Violations.count index c with
  | Some n -> Printf.printf "\nviolating students (model count, no enumeration): %.0f\n" n
  | None -> ());
  match Core.Violations.enumerate ~limit:5 index c with
  | Some ws ->
    print_endline "first violating students:";
    List.iter
      (fun w ->
        List.iter
          (fun (x, v) -> Printf.printf "  %s = %s\n" x (Fcv_relation.Value.to_string v))
          w)
      ws
  | None -> ()
