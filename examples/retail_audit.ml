(* End-to-end audit of a multi-table retail database: eight
   user-defined constraints (referential integrity, cross-table
   agreement, FDs, channel policy) validated in one batch — first on
   clean data, then on data with three kinds of injected corruption.

   Shows the deliverable the paper promises: identify WHICH constraints
   are violated fast, then drill into witnesses only where needed.

   Run with: dune exec examples/retail_audit.exe *)

module R = Fcv_relation
module C = Core.Checker

let audit label data =
  Printf.printf "\n=== %s ===\n" label;
  let index = Core.Index.create ~max_nodes:4_000_000 data.Fcv_datagen.Retail.db in
  let parsed =
    List.map
      (fun (name, src) -> (name, Core.Fol_parser.of_string src))
      Fcv_datagen.Retail.audit_constraints
  in
  let t0 = Fcv_util.Timer.now () in
  C.ensure_indices index (List.map snd parsed);
  Printf.printf "indices built in %.0f ms:" ((Fcv_util.Timer.now () -. t0) *. 1000.);
  List.iter
    (fun e ->
      Printf.printf " %s=%d" (R.Table.name e.Core.Index.table) (Core.Index.entry_size index e))
    (Core.Index.entries index);
  print_newline ();
  let t1 = Fcv_util.Timer.now () in
  let results = List.map (fun (name, c) -> (name, c, C.check index c)) parsed in
  Printf.printf "batch of %d constraints checked in %.0f ms\n" (List.length parsed)
    ((Fcv_util.Timer.now () -. t1) *. 1000.);
  List.iter
    (fun (name, c, r) ->
      Printf.printf "  [%s] %-42s %7.1f ms\n"
        (match r.C.outcome with C.Satisfied -> "ok" | C.Violated -> "!!")
        name r.C.elapsed_ms;
      if r.C.outcome = C.Violated then begin
        match Core.Violations.enumerate ~limit:2 index c with
        | Some (w :: _) ->
          Printf.printf "        e.g. %s\n"
            (String.concat ", "
               (List.map (fun (x, v) -> x ^ "=" ^ R.Value.to_string v) w))
        | _ -> ()
      end)
    results

let () =
  let rng = Fcv_util.Rng.create 2026 in
  let clean = Fcv_datagen.Retail.generate rng Fcv_datagen.Retail.default in
  Printf.printf "retail database: %d customers, %d products, %d orders, %d shipments\n"
    (R.Table.cardinality clean.Fcv_datagen.Retail.customers)
    (R.Table.cardinality clean.Fcv_datagen.Retail.products)
    (R.Table.cardinality clean.Fcv_datagen.Retail.orders)
    (R.Table.cardinality clean.Fcv_datagen.Retail.shipments);
  audit "clean data" clean;
  let dirty =
    Fcv_datagen.Retail.generate rng
      {
        Fcv_datagen.Retail.default with
        Fcv_datagen.Retail.bad_ref_rate = 0.002;
        bad_dest_rate = 0.001;
        bad_channel_rate = 0.0005;
      }
  in
  audit "with injected corruption (dangling refs, wrong destinations, forbidden channels)" dirty
