(* Quickstart: declare a tiny database, state a constraint in the
   textual FOL syntax, build logical indices, check the constraint and
   list the violating tuples.

   Run with: dune exec examples/quickstart.exe *)

module R = Fcv_relation

let () =
  (* 1. A database: domains are shared dictionaries; tables type their
        attributes by domain so values join across tables. *)
  let db = R.Database.create () in
  let people =
    R.Database.create_table db ~name:"people"
      ~attrs:[ ("name", "person"); ("city", "city") ]
  in
  let cities =
    R.Database.create_table db ~name:"cities"
      ~attrs:[ ("city", "city"); ("state", "state") ]
  in
  let s x = R.Value.Str x in
  List.iter
    (fun (n, c) -> ignore (R.Table.insert people [| s n; s c |]))
    [
      ("alice", "toronto");
      ("bob", "oshawa");
      ("carol", "newark");
      ("dan", "gotham");  (* gotham is not a registered city *)
    ];
  List.iter
    (fun (c, st) -> ignore (R.Table.insert cities [| s c; s st |]))
    [ ("toronto", "ON"); ("oshawa", "ON"); ("newark", "NJ") ];

  (* 2. A constraint: every person's city must be registered. *)
  let constraint_ =
    Core.Fol_parser.of_string
      "forall p, c . people(p, c) -> (exists st . cities(c, st))"
  in
  Printf.printf "constraint: %s\n\n" (Core.Formula.to_string constraint_);

  (* 3. Logical indices: one BDD per relation, ordered by the
        Prob-Converge heuristic, all in one shared manager. *)
  let index = Core.Index.create db in
  Core.Checker.ensure_indices index [ constraint_ ];
  List.iter
    (fun e ->
      Printf.printf "index on %-8s %4d BDD nodes, built in %.3f ms\n"
        (R.Table.name e.Core.Index.table)
        (Core.Index.entry_size index e)
        (e.Core.Index.build_time *. 1000.))
    (Core.Index.entries index);

  (* 4. Check: the rewrite pipeline turns the check into an O(1) test
        on the final BDD. *)
  let r = Core.Checker.check index constraint_ in
  Printf.printf "\nverdict: %s  (method: %s, %.3f ms)\n"
    (match r.Core.Checker.outcome with
    | Core.Checker.Satisfied -> "SATISFIED"
    | Core.Checker.Violated -> "VIOLATED")
    (Core.Checker.method_name r.Core.Checker.method_used)
    r.Core.Checker.elapsed_ms;
  Printf.printf "rewritten for evaluation: %s\n" (Core.Formula.to_string r.Core.Checker.rewritten);

  (* 5. Only now pay for the expensive part: who violates it? *)
  match Core.Violations.enumerate index constraint_ with
  | Some witnesses when witnesses <> [] ->
    print_endline "\nviolating bindings:";
    List.iter
      (fun w ->
        print_endline
          ("  "
          ^ String.concat ", "
              (List.map (fun (x, v) -> x ^ " = " ^ R.Value.to_string v) w)))
      witnesses
  | _ -> print_endline "\nno violations"
