(* Continuous validation: the paper's motivating scenario end to end.

   A Monitor owns a set of registered constraints over the customer
   database.  Updates stream through the logical indices; after each
   batch only the constraints whose tables changed are re-validated
   (the others return their cached verdict instantly), and the first
   offending tuples are reported the moment a constraint breaks.

   Run with: dune exec examples/monitor_stream.exe *)

module R = Fcv_relation
module C = Core.Checker

let () =
  let rng = Fcv_util.Rng.create 99 in
  let db = Fcv_datagen.Customers.make_db () in
  let cust, world = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows:30_000 in
  let _allowed =
    Fcv_datagen.Customers.constraints_table rng db world ~name:"allowed" ~n:8_000
  in
  Printf.printf "customers: %d rows\n" (R.Table.cardinality cust);

  let index = Core.Index.create ~max_nodes:2_000_000 db in
  (* the paper's projection indices: registering them first means the
     monitor's ensure_indices finds cust covered and skips the (much
     larger) full-arity index *)
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "city"; "state" ]
       ~strategy:Core.Ordering.Prob_converge ());
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "city"; "state"; "zipcode" ]
       ~strategy:Core.Ordering.Prob_converge ());
  let mon = Core.Monitor.create index in
  let registered =
    List.map (Core.Monitor.add mon)
      [
        "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2";
        "forall z, c1, c2 . cust(_, _, c1, _, z) and cust(_, _, c2, _, z) -> c1 = c2";
        "forall c, a . cust(a, _, c, _, _) and (exists x . allowed(c, x)) -> allowed(c, a)";
      ]
  in
  Printf.printf "registered %d constraints; indices: %s\n\n" (List.length registered)
    (String.concat " "
       (List.map
          (fun e ->
            Printf.sprintf "%s=%d" (R.Table.name e.Core.Index.table)
              (Core.Index.entry_size index e))
          (Core.Index.entries index)));

  let show_batch label =
    let t0 = Fcv_util.Timer.now () in
    let reports = Core.Monitor.validate mon in
    Printf.printf "%-28s (%.1f ms total)\n" label ((Fcv_util.Timer.now () -. t0) *. 1000.);
    List.iter
      (fun r ->
        Printf.printf "  [%s%s] %s\n"
          (match r.Core.Monitor.outcome with C.Satisfied -> "ok" | C.Violated -> "!!")
          (if r.Core.Monitor.fresh then "" else " cached")
          (String.sub r.Core.Monitor.constraint_.Core.Monitor.source 0 60 ^ "..."))
      reports
  in
  show_batch "initial validation";

  (* a batch of clean inserts touching only cust *)
  let by_state = Fcv_datagen.Customers.areas_by_state world in
  for _ = 1 to 500 do
    let zip = Fcv_util.Rng.int rng Fcv_datagen.Customers.n_zip in
    let city = world.Fcv_datagen.Customers.zip_city.(zip) in
    let state = world.Fcv_datagen.Customers.city_state.(city) in
    let areacode =
      if Array.length by_state.(state) = 0 then 0 else Fcv_util.Rng.choose rng by_state.(state)
    in
    Core.Monitor.insert mon ~table_name:"cust"
      [| areacode; Fcv_util.Rng.int rng Fcv_datagen.Customers.n_number; city; state; zip |]
  done;
  show_batch "after 500 clean inserts";

  (* nothing changed since: every verdict comes from cache *)
  show_batch "no updates";

  (* poison: one tuple gives an areacode a second state *)
  Core.Monitor.insert mon ~table_name:"cust" [| 7; 1; 2; 49; 3 |];
  Core.Monitor.insert mon ~table_name:"cust" [| 7; 1; 2; 48; 3 |];
  show_batch "after poisoned insert";

  (* drill into the broken FD with the projection-count checker *)
  let bad =
    Core.Fd_check.violating_lhs ~limit:5 index ~table_name:"cust" ~lhs:[ "areacode" ]
      ~rhs:[ "state" ]
  in
  print_endline "\nareacodes now mapping to several states:";
  List.iter
    (fun vs ->
      Printf.printf "  areacode %s\n" (String.concat "," (List.map R.Value.to_string vs)))
    bad;

  (* persistence: snapshot the (repaired) indices for the next session *)
  let path = Filename.temp_file "fcv_indices" ".idx" in
  Core.Index_io.save_file index path;
  Printf.printf "\nindices saved to %s (%d bytes)\n" path (Unix.stat path).Unix.st_size;
  Sys.remove path
